/**
 * @file
 * Scheduling policies (Sections 3.3-3.4, 4.2-4.4).
 *
 * A policy decides *which* kernels get admitted and *which* SMs they
 * run on; it triggers preemption through the framework and never
 * talks to the mechanism directly.
 *
 * Policies self-register in policyRegistry() (see core/registry.hh);
 * run any bench or example with --list-schemes for the live list with
 * doc strings and declared tunables.  Built-ins: "fcfs" (the baseline
 * GPU), "npq", "ppq_excl", "ppq_shared" (Section 4.2-4.3), "dss"
 * (Algorithm 1), "tmux" (round-robin time slicing) and "ppq_aging"
 * (PPQ with priority aging against low-priority starvation).
 */

#ifndef GPUMP_CORE_POLICY_HH
#define GPUMP_CORE_POLICY_HH

#include <memory>
#include <string>

#include "core/registry.hh"
#include "gpu/kernel_exec.hh"
#include "gpu/sm.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace gpump {
namespace core {

class SchedulingFramework;

/** Abstract scheduling policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Wire to the owning framework (called once at assembly). */
    virtual void bind(SchedulingFramework &fw) { fw_ = &fw; }

    /** @name Framework events
     * @{ */
    /** A kernel command appeared in @p ctx's command buffer. */
    virtual void onCommandWaiting(sim::ContextId ctx) = 0;

    /** @p sm just became idle (kernel drained or finished there). */
    virtual void onSmIdle(gpu::Sm *sm) = 0;

    /** @p k completed all thread blocks and left the tables.  The
     *  pointer is valid only for the duration of the call. */
    virtual void onKernelFinished(gpu::KernelExec *k) = 0;

    /**
     * Preemption of @p sm finished; @p next is the reservation target
     * (nullptr when that kernel finished in the meantime).  The SM is
     * idle; the policy decides what runs on it next.
     */
    virtual void onPreemptionComplete(gpu::Sm *sm,
                                      gpu::KernelExec *next) = 0;
    /** @} */

  protected:
    SchedulingFramework *fw_ = nullptr;
};

/** The process-wide registry of scheduling policies. */
using PolicyRegistry = SchemeRegistry<SchedulingPolicy>;
PolicyRegistry &policyRegistry();

/**
 * Reference the link anchors of every built-in policy so their
 * archive members (and registrar objects) survive static linking.
 * makePolicy and the --list-schemes printer call this; out-of-tree
 * registrants never need it.
 */
void linkBuiltinPolicies();

/**
 * Policy factory: a thin lookup into policyRegistry().
 *
 * @param name a registered policy ("fcfs", "npq", "ppq_excl",
 *             "ppq_shared", "dss", "tmux", "ppq_aging", or anything
 *             registered out of tree).
 * @param cfg  policy tunables (e.g. "dss.tokens_per_kernel").
 *
 * Raises fatal() for unknown names (listing every registered policy)
 * and for unknown or ill-typed keys under any policy-claimed config
 * namespace (naming the nearest declared tunable).
 */
std::unique_ptr<SchedulingPolicy>
makePolicy(const std::string &name, const sim::Config &cfg);

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_POLICY_HH
