/**
 * @file
 * Scheduling policies (Sections 3.3-3.4, 4.2-4.4).
 *
 * A policy decides *which* kernels get admitted and *which* SMs they
 * run on; it triggers preemption through the framework and never
 * talks to the mechanism directly.  Implemented policies:
 *  - "fcfs":       the baseline GPU (arrival order, one context at a
 *                  time on the engine, back-to-back within a context);
 *  - "npq":        non-preemptive priority queues;
 *  - "ppq_excl":   preemptive priority queues, the high-priority
 *                  process has exclusive access to the engine;
 *  - "ppq_shared": preemptive priority queues with low-priority
 *                  back-filling of free SMs;
 *  - "dss":        Dynamic Spatial Sharing (Algorithm 1).
 */

#ifndef GPUMP_CORE_POLICY_HH
#define GPUMP_CORE_POLICY_HH

#include <memory>
#include <string>

#include "gpu/kernel_exec.hh"
#include "gpu/sm.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace gpump {
namespace core {

class SchedulingFramework;

/** Abstract scheduling policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Wire to the owning framework (called once at assembly). */
    virtual void bind(SchedulingFramework &fw) { fw_ = &fw; }

    /** @name Framework events
     * @{ */
    /** A kernel command appeared in @p ctx's command buffer. */
    virtual void onCommandWaiting(sim::ContextId ctx) = 0;

    /** @p sm just became idle (kernel drained or finished there). */
    virtual void onSmIdle(gpu::Sm *sm) = 0;

    /** @p k completed all thread blocks and left the tables.  The
     *  pointer is valid only for the duration of the call. */
    virtual void onKernelFinished(gpu::KernelExec *k) = 0;

    /**
     * Preemption of @p sm finished; @p next is the reservation target
     * (nullptr when that kernel finished in the meantime).  The SM is
     * idle; the policy decides what runs on it next.
     */
    virtual void onPreemptionComplete(gpu::Sm *sm,
                                      gpu::KernelExec *next) = 0;
    /** @} */

  protected:
    SchedulingFramework *fw_ = nullptr;
};

/**
 * Policy factory.
 *
 * @param name one of "fcfs", "npq", "ppq_excl", "ppq_shared", "dss".
 * @param cfg  policy tunables (e.g. "dss.tokens_per_kernel").
 *
 * Raises fatal() for unknown names.
 */
std::unique_ptr<SchedulingPolicy>
makePolicy(const std::string &name, const sim::Config &cfg);

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_POLICY_HH
