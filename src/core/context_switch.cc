#include "core/context_switch.hh"

#include <vector>

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

void
ContextSwitchMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "context switch on SM %d with nothing resident",
                 sm->id());

    gpu::KernelExec *k = sm->kernel;
    sm->state = gpu::Sm::State::Saving;

    // Halt every resident thread block: revoke its completion event
    // and capture how much execution it still needs.  The blocks
    // reach the PTBQ only once the save finishes, so they cannot be
    // re-issued while their context is still in flight.
    std::vector<gpu::PreemptedTb> saved;
    saved.reserve(sm->resident.size());
    for (auto &tb : sm->resident) {
        tb.completion.cancel();
        sim::SimTime remaining = tb.endAt - fw_->sim().now();
        GPUMP_ASSERT(remaining >= 0, "resident TB already past its end");
        saved.push_back(gpu::PreemptedTb{tb.tbIndex, remaining});
        k->tbEnded(false);
    }
    sm->resident.clear();

    // The trap routine drains the pipeline (precise exceptions), then
    // every thread collaboratively stores registers and the shared
    // memory partition at the SM's share of memory bandwidth.
    std::int64_t bytes = k->contextBytesPerTb() *
        static_cast<std::int64_t>(saved.size());
    sim::SimTime save_time =
        fw_->gmem().moveTime(bytes, fw_->params().numSms);
    fw_->recordContextSave(bytes, static_cast<int>(saved.size()));

    sm->pendingEvent = fw_->sim().events().scheduleIn(
        fw_->params().pipelineDrainLatency + save_time,
        [this, sm, k, saved = std::move(saved)] {
            for (const auto &pt : saved)
                k->pushPreemptedTb(pt);
            fw_->recordPtbqDepth(k->ptbqDepth());
            fw_->completePreemption(sm);
        },
        sim::prioCompletion);
}

} // namespace core
} // namespace gpump
