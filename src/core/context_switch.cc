#include "core/context_switch.hh"

#include <algorithm>
#include <vector>

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

void
ContextSwitchMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "context switch on SM %d with nothing resident",
                 sm->id());

    gpu::KernelExec *k = sm->kernel;
    sm->state = gpu::Sm::State::Saving;

    // Halt every resident thread block: disarm the SM's completion
    // timeline (one event covers them all) and capture how much
    // execution each block still needs.  The blocks reach the PTBQ
    // only once the save finishes, so they cannot be re-issued while
    // their context is still in flight.  The timeline keeps residents
    // in completion order; the trap routine stores (and the PTBQ
    // receives) them in issue order, so re-sort by issue sequence.
    sm->completionEvent.cancel();
    std::vector<gpu::ResidentTb> halted(sm->resident);
    std::sort(halted.begin(), halted.end(),
              [](const gpu::ResidentTb &a, const gpu::ResidentTb &b) {
                  return a.seq < b.seq;
              });
    std::vector<gpu::PreemptedTb> saved;
    saved.reserve(halted.size());
    for (const auto &tb : halted) {
        sim::SimTime remaining = tb.endAt - fw_->sim().now();
        GPUMP_ASSERT(remaining >= 0, "resident TB already past its end");
        saved.push_back(gpu::PreemptedTb{tb.tbIndex, remaining});
        k->tbEnded(false);
    }
    sm->resident.clear();

    // The trap routine drains the pipeline (precise exceptions), then
    // every thread collaboratively stores registers and the shared
    // memory partition.
    std::int64_t bytes = k->contextBytesPerTb() *
        static_cast<std::int64_t>(saved.size());
    fw_->recordContextSave(bytes, static_cast<int>(saved.size()));

    if (fw_->contendedSwitch()) {
        // Contended-switch model: after the drain the context bytes
        // travel as a D2H transfer command, queueing behind (and
        // delaying) workload copies instead of taking a fixed
        // bandwidth share.
        sm->pendingEvent = fw_->sim().events().scheduleIn(
            fw_->params().pipelineDrainLatency,
            [this, sm, k, bytes, saved = std::move(saved)] {
                fw_->submitContextTransfer(
                    k->ctx(), k->priority(), bytes,
                    gpu::Command::Kind::MemcpyD2H,
                    [this, sm, k, saved] { finishSave(sm, k, saved); });
            },
            sim::prioCompletion);
        return;
    }

    // Share model (the default Section 3.2 cost): the store runs at
    // the SM's share of memory bandwidth, overlapping everything.
    sim::SimTime save_time =
        fw_->gmem().moveTime(bytes, fw_->params().numSms);
    sm->pendingEvent = fw_->sim().events().scheduleIn(
        fw_->params().pipelineDrainLatency + save_time,
        [this, sm, k, saved = std::move(saved)] {
            finishSave(sm, k, saved);
        },
        sim::prioCompletion);
}

void
ContextSwitchMechanism::finishSave(gpu::Sm *sm, gpu::KernelExec *k,
                                   const std::vector<gpu::PreemptedTb> &saved)
{
    for (const auto &pt : saved)
        k->pushPreemptedTb(pt);
    fw_->recordPtbqDepth(k->ptbqDepth());
    fw_->completePreemption(sm);
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_cs = [] {
    MechanismRegistry::Descriptor d;
    d.name = "context_switch";
    d.aliases = {"cs"};
    d.doc = "Save/restore preemption (Section 3.2): drain the "
            "pipeline, save every resident thread block's context to "
            "off-chip memory at the SM's bandwidth share, re-issue "
            "from the PTBQ later";
    d.factory = [](const sim::Config &) {
        return std::make_unique<ContextSwitchMechanism>();
    };
    mechanismRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(ContextSwitchMechanism)

} // namespace core
} // namespace gpump
