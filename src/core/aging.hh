/**
 * @file
 * Preemptive priority queues with priority aging ("ppq_aging").
 *
 * Plain PPQ starves low-priority processes: in exclusive mode they
 * never run while higher-priority work exists, and even in shared
 * mode they are preempted back off the SMs as soon as the
 * high-priority kernel wants capacity.  Priority-driven preemptive
 * GPU scheduling proposals (e.g. GCAPS) bound that starvation by
 * *aging*: a kernel's effective priority rises the longer it goes
 * unserved, until it out-ranks the running work and the normal PPQ
 * preemption path schedules it.
 *
 * Model here: a kernel is "served" while it holds at least one SM.
 * While unserved its effective priority is its launch priority plus
 * step x floor(waiting / interval), capped at max_boost; the waiting
 * clock keeps running through an in-flight reservation (the kernel
 * is still not executing).  When service begins, the boost it aged
 * up to is *frozen* for the duration of the turn — so the kernel it
 * just out-ranked cannot immediately preempt it back — and when the
 * turn ends (it loses its last SM) the clock and boost reset to the
 * launch priority.  Every waiting kernel therefore gets a bounded
 * turn instead of inverting the priority order permanently.
 *
 * A policy timer re-evaluates every interval so aging makes progress
 * even when no scheduling event would otherwise fire (a fully busy
 * engine generates no SM-idle callbacks).
 */

#ifndef GPUMP_CORE_AGING_HH
#define GPUMP_CORE_AGING_HH

#include <map>

#include "core/priority.hh"
#include "sim/event.hh"

namespace gpump {
namespace core {

/** PPQ with starvation-bounding priority aging. */
class PpqAgingPolicy : public PpqPolicy
{
  public:
    /**
     * @param interval  waiting time per aging step (> 0).
     * @param step      effective-priority boost per elapsed interval.
     * @param max_boost cap on the total boost (>= 0).
     * @param exclusive PPQ access mode the aging runs on top of.
     */
    PpqAgingPolicy(sim::SimTime interval, int step, int max_boost,
                   bool exclusive);

    const char *name() const override { return "ppq_aging"; }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

    /** Aging ticks fired (for tests). */
    std::uint64_t ticks() const { return ticks_; }

    /** The boost @p k currently enjoys: the live waiting boost while
     *  unserved, the frozen turn boost while served. */
    int boostOf(const gpu::KernelExec *k) const;

  protected:
    int effectivePriority(const gpu::KernelExec *k) const override;

  private:
    /** Per-kernel aging state. */
    struct AgeState
    {
        /** Holding at least one SM right now. */
        bool served = false;
        /** Start of the current waiting stretch (meaningful while
         *  not served). */
        sim::SimTime waitingSince = 0;
        /** Boost carried through the current service turn. */
        int frozenBoost = 0;
    };

    /** Boost a kernel waiting since @p since has aged up to. */
    int waitingBoost(sim::SimTime since) const;

    /** Detect served/waiting transitions (freeze or reset boosts)
     *  and prune kernels that left the tables. */
    void refreshService();

    /** Arm the aging timer while any active kernel is waiting. */
    void armTimer();
    void onTick();

    sim::SimTime interval_;
    int step_;
    int maxBoost_;
    std::map<const gpu::KernelExec *, AgeState> state_;
    sim::EventQueue::Handle timer_;
    std::uint64_t ticks_ = 0;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_AGING_HH
