#include "core/proactive_mem.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

ProactiveMemMechanism::ProactiveMemMechanism(int lookahead)
    : lookahead_(lookahead)
{
    GPUMP_ASSERT(lookahead > 0, "non-positive proactive lookahead");
}

void
ProactiveMemMechanism::bind(SchedulingFramework &fw)
{
    PreemptionMechanism::bind(fw);
    contextSwitch_.bind(fw);
}

void
ProactiveMemMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");

    // The SM is reserved, so the incoming kernel is known right now —
    // stage its preempted blocks' restore fetches before the save
    // starts, so both directions of the switch move concurrently.
    gpu::KernelExec *next = sm->nextKernel;
    int staged = 0;
    if (next != nullptr && next->ptbqDepth() > 0)
        staged = fw_->stageRestore(next, lookahead_);
    if (staged > 0) {
        ++prefetches_;
        tbsStaged_ += static_cast<std::uint64_t>(staged);
    } else {
        ++skips_;
    }

    contextSwitch_.beginPreemption(sm);
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_proactive = [] {
    MechanismRegistry::Descriptor d;
    d.name = "proactive_mem";
    d.aliases = {"proactive"};
    d.doc = "Context switch with restore prefetch: stages the "
            "reservation target's preempted-block state over the "
            "transfer path while the victim drains and saves, so "
            "re-issued blocks skip the inline restore";
    d.configPrefix = "proactive_mem";
    d.tunables = {
        {"proactive_mem.lookahead", TunableType::Int, "16",
         "max preempted TBs whose restore is staged per preemption; "
         "must be > 0"},
    };
    d.factory = [](const sim::Config &cfg) {
        int lookahead =
            static_cast<int>(cfg.getInt("proactive_mem.lookahead", 16));
        if (lookahead <= 0)
            sim::fatal("proactive_mem.lookahead must be > 0");
        return std::make_unique<ProactiveMemMechanism>(lookahead);
    };
    mechanismRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(ProactiveMemMechanism)

} // namespace core
} // namespace gpump
