/**
 * @file
 * Priority-queue scheduling policies (Section 4.2).
 *
 * NpqPolicy: non-preemptive priority queues.  Kernels are admitted
 * and scheduled highest-priority first, but a running kernel is never
 * disturbed, and the baseline one-context-at-a-time constraint still
 * holds (NPQ is implementable without the multiprogramming
 * extensions).
 *
 * PpqPolicy: preemptive priority queues.  When a kernel of higher
 * priority arrives, SMs running lower-priority kernels are reserved
 * for it and vacated through the preemption mechanism.  Two access
 * modes (Section 4.3):
 *  - exclusive: while any higher-priority kernel is active,
 *    lower-priority kernels are not scheduled even onto free SMs;
 *  - shared: lower-priority kernels back-fill free SMs (and get
 *    preempted again when the high-priority kernel needs them).
 */

#ifndef GPUMP_CORE_PRIORITY_HH
#define GPUMP_CORE_PRIORITY_HH

#include <vector>

#include "core/policy.hh"

namespace gpump {
namespace core {

/** Non-preemptive priority queues. */
class NpqPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "npq"; }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

  protected:
    /** Admit waiting commands, highest (priority, then arrival) first. */
    void admit();

    /**
     * The priority used for every ordering decision.  Defaults to the
     * kernel's launch priority; subclasses may boost it (the aging
     * policy raises it with waiting time to prevent starvation).
     * Must be stable for the duration of one policy callback.
     */
    virtual int effectivePriority(const gpu::KernelExec *k) const
    {
        return k->priority();
    }

    /** Active kernels sorted by descending effectivePriority, then
     *  arrival. */
    std::vector<gpu::KernelExec *> sortedActive() const;

    /** Hand idle SMs to kernels in priority order (non-preemptive). */
    void schedule();

  private:
    /** Reused by admit() so the per-arrival probe never allocates. */
    std::vector<sim::ContextId> waitingScratch_;
};

/** Preemptive priority queues. */
class PpqPolicy : public NpqPolicy
{
  public:
    /** @param exclusive grant the top priority exclusive engine
     *                   access (no low-priority back-filling). */
    explicit PpqPolicy(bool exclusive) : exclusive_(exclusive) {}

    const char *name() const override
    {
        return exclusive_ ? "ppq_excl" : "ppq_shared";
    }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

  protected:
    /** SM capacity a kernel still needs beyond what it holds or has
     *  been promised through pending reservations. */
    int needExtra(const gpu::KernelExec *k) const;

    /** Reserve lower-priority SMs for higher-priority kernels. */
    void preempt();

    /** Priority-ordered scheduling honouring the access mode. */
    void scheduleWithMode();

  private:
    bool exclusive_;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_PRIORITY_HH
