#include "core/registry.hh"

#include <algorithm>

namespace gpump {
namespace core {

const char *
tunableTypeName(TunableType t)
{
    switch (t) {
      case TunableType::Int: return "int";
      case TunableType::Double: return "double";
      case TunableType::Bool: return "bool";
      case TunableType::String: return "string";
    }
    return "?";
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<std::size_t> prev(m + 1);
    std::vector<std::size_t> cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

std::string
nearestOf(const std::string &needle,
          const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_dist = 0;
    for (const std::string &c : candidates) {
        std::size_t d = editDistance(needle, c);
        if (best.empty() || d < best_dist) {
            best = c;
            best_dist = d;
        }
    }
    // Only suggest plausible typos; for anything further off the
    // caller should enumerate the valid options instead.
    if (!best.empty() && best_dist > needle.size() / 2)
        best.clear();
    return best;
}

} // namespace core
} // namespace gpump
