#include "core/aging.hh"

#include <algorithm>
#include <iterator>

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

PpqAgingPolicy::PpqAgingPolicy(sim::SimTime interval, int step,
                               int max_boost, bool exclusive)
    : PpqPolicy(exclusive), interval_(interval), step_(step),
      maxBoost_(max_boost)
{
    GPUMP_ASSERT(interval > 0, "non-positive aging interval");
    GPUMP_ASSERT(step >= 0 && max_boost >= 0,
                 "negative aging step or boost cap");
}

int
PpqAgingPolicy::waitingBoost(sim::SimTime since) const
{
    std::int64_t steps = (fw_->sim().now() - since) / interval_;
    std::int64_t boost = std::min<std::int64_t>(
        maxBoost_, static_cast<std::int64_t>(step_) * steps);
    return static_cast<int>(boost);
}

int
PpqAgingPolicy::boostOf(const gpu::KernelExec *k) const
{
    auto it = state_.find(k);
    if (it == state_.end())
        return 0;
    return it->second.served ? it->second.frozenBoost
                             : waitingBoost(it->second.waitingSince);
}

int
PpqAgingPolicy::effectivePriority(const gpu::KernelExec *k) const
{
    return k->priority() + boostOf(k);
}

void
PpqAgingPolicy::refreshService()
{
    sim::SimTime now = fw_->sim().now();
    // Track the served/waiting transitions of the active kernels in
    // place (this runs on every policy callback, so no per-call map
    // rebuild).  "Served" means holding an SM; an in-flight
    // reservation keeps the waiting clock (and the growing boost)
    // alive until the SM is actually handed over.
    const auto &active = fw_->activeKernels();
    for (const gpu::KernelExec *k : active) {
        bool served = k->smsHeld > 0;
        auto [it, inserted] = state_.try_emplace(k);
        AgeState &s = it->second;
        if (inserted) {
            s.served = served;
            s.waitingSince = now;
        } else if (served && !s.served) {
            // Turn starts: carry the aged boost through it.
            s.frozenBoost = waitingBoost(s.waitingSince);
            s.served = true;
        } else if (!served && s.served) {
            // Turn over: back to the launch priority, clock restarted.
            s.served = false;
            s.waitingSince = now;
            s.frozenBoost = 0;
        }
    }
    // Finalized kernels are erased in onKernelFinished; sweep any
    // leftover stale pointer so a recycled KernelExec address can
    // never inherit old aging state.
    if (state_.size() > active.size()) {
        for (auto it = state_.begin(); it != state_.end();) {
            bool live = std::find(active.begin(), active.end(),
                                  it->first) != active.end();
            it = live ? std::next(it) : state_.erase(it);
        }
    }
}

void
PpqAgingPolicy::onCommandWaiting(sim::ContextId ctx)
{
    refreshService();
    PpqPolicy::onCommandWaiting(ctx);
    refreshService();
    armTimer();
}

void
PpqAgingPolicy::onSmIdle(gpu::Sm *sm)
{
    refreshService();
    PpqPolicy::onSmIdle(sm);
    refreshService();
    armTimer();
}

void
PpqAgingPolicy::onKernelFinished(gpu::KernelExec *k)
{
    state_.erase(k);
    refreshService();
    PpqPolicy::onKernelFinished(k);
    refreshService();
    armTimer();
}

void
PpqAgingPolicy::onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next)
{
    refreshService();
    // Honour the reservation directly (as DSS and tmux do): the
    // beneficiary's aged boost earned this SM, and routing through
    // the priority-sorted scheduler would let the preempted kernel
    // take it straight back once the boost freezes.
    if (next != nullptr && fw_->unallocatedTbs(next) > 0) {
        fw_->assignSm(sm, next);
    } else {
        PpqPolicy::onPreemptionComplete(sm, next);
    }
    refreshService();
    armTimer();
}

void
PpqAgingPolicy::armTimer()
{
    if (timer_.pending())
        return;
    // Aging only matters while somebody is waiting unserved.
    bool waiting = false;
    for (const gpu::KernelExec *k : fw_->activeKernels()) {
        if (k->smsHeld + k->smsReserved == 0) {
            waiting = true;
            break;
        }
    }
    if (!waiting)
        return;
    timer_ = fw_->sim().events().scheduleIn(
        interval_, [this] { onTick(); }, sim::prioPolicy);
}

void
PpqAgingPolicy::onTick()
{
    ++ticks_;
    // Waiting clocks age by elapsed time, not by this tick; the tick
    // only gives the policy a chance to act on the new effective
    // priorities (admit starved buffers, preempt, schedule).
    refreshService();
    admit();
    preempt();
    scheduleWithMode();
    refreshService();
    armTimer();
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_ppq_aging = [] {
    PolicyRegistry::Descriptor d;
    d.name = "ppq_aging";
    d.doc = "Preemptive priority queues with priority aging: an "
            "unserved kernel's effective priority rises with waiting "
            "time, bounding low-priority starvation";
    d.configPrefix = "ppq_aging";
    d.tunables = {
        {"ppq_aging.interval_us", TunableType::Double, "500",
         "waiting time per aging step, microseconds (> 0)"},
        {"ppq_aging.step", TunableType::Int, "1",
         "effective-priority boost per elapsed interval (>= 0)"},
        {"ppq_aging.max_boost", TunableType::Int, "1000",
         "cap on the total aging boost (>= 0)"},
        {"ppq_aging.exclusive", TunableType::Bool, "false",
         "run on top of exclusive-mode PPQ instead of shared mode"},
    };
    d.factory = [](const sim::Config &cfg) {
        double interval_us = cfg.getDouble("ppq_aging.interval_us",
                                           500.0);
        if (interval_us <= 0)
            sim::fatal("ppq_aging.interval_us must be positive");
        int step = static_cast<int>(cfg.getInt("ppq_aging.step", 1));
        int max_boost =
            static_cast<int>(cfg.getInt("ppq_aging.max_boost", 1000));
        if (step < 0 || max_boost < 0)
            sim::fatal("ppq_aging.step and ppq_aging.max_boost must "
                       "be >= 0");
        bool exclusive = cfg.getBool("ppq_aging.exclusive", false);
        return std::make_unique<PpqAgingPolicy>(
            sim::microseconds(interval_us), step, max_boost, exclusive);
    };
    policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(PpqAgingPolicy)

} // namespace core
} // namespace gpump
