#include "core/adaptive.hh"

#include "core/framework.hh"
#include "gpu/transfer_engine.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

sim::SimTime
modeledContextSaveCost(SchedulingFramework &fw, const gpu::Sm *sm)
{
    GPUMP_ASSERT(sm->kernel != nullptr, "save estimate on idle SM");
    std::int64_t bytes = sm->kernel->contextBytesPerTb() *
        static_cast<std::int64_t>(sm->resident.size());
    if (fw.contendedSwitch() && fw.transferEngine() != nullptr) {
        // The save is a D2H command on the transfer engine: it queues
        // behind every transfer already submitted, so the backlog is
        // part of the cost.  Ignoring it understated the save exactly
        // when the engine was busy — the case the contended model
        // exists for.
        const gpu::TransferEngine &xfer = *fw.transferEngine();
        return fw.params().pipelineDrainLatency + xfer.modeledBacklog() +
            xfer.bus().transferDuration(bytes);
    }
    return fw.params().pipelineDrainLatency +
        fw.gmem().moveTime(bytes, fw.params().numSms);
}

AdaptiveMechanism::AdaptiveMechanism(double bias)
    : bias_(bias)
{
    GPUMP_ASSERT(bias >= 0.0, "negative adaptive bias");
}

void
AdaptiveMechanism::bind(SchedulingFramework &fw)
{
    PreemptionMechanism::bind(fw);
    contextSwitch_.bind(fw);
    draining_.bind(fw);
}

sim::SimTime
AdaptiveMechanism::estimatedDrainTime(const gpu::Sm *sm) const
{
    GPUMP_ASSERT(!sm->resident.empty(),
                 "drain estimate on an empty SM");
    // resident is kept ordered by (endAt, seq): the back entry is the
    // last block to finish, which is when draining would complete.
    return sm->resident.back().endAt - fw_->sim().now();
}

sim::SimTime
AdaptiveMechanism::modeledSaveCost(const gpu::Sm *sm) const
{
    return modeledContextSaveCost(*fw_, sm);
}

void
AdaptiveMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "adaptive preemption on SM %d with nothing resident",
                 sm->id());

    double drain_est = static_cast<double>(estimatedDrainTime(sm));
    double save_est = static_cast<double>(modeledSaveCost(sm));
    if (drain_est <= bias_ * save_est) {
        ++drains_;
        draining_.beginPreemption(sm);
    } else {
        ++switches_;
        contextSwitch_.beginPreemption(sm);
    }
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_adaptive = [] {
    MechanismRegistry::Descriptor d;
    d.name = "adaptive";
    d.doc = "Per-SM drain-vs-switch selection: drains when the "
            "resident blocks' estimated remaining time is below the "
            "modeled context-save cost, context-switches otherwise "
            "(the Figures 6-7 tradeoff, played per preemption)";
    d.configPrefix = "adaptive";
    d.tunables = {
        {"adaptive.bias", TunableType::Double, "1",
         "drain when estimated drain time <= bias x modeled save "
         "cost; >1 favours draining, 0 context-switches unless the "
         "SM is already at a block boundary (zero drain estimate)"},
    };
    d.factory = [](const sim::Config &cfg) {
        double bias = cfg.getDouble("adaptive.bias", 1.0);
        if (bias < 0)
            sim::fatal("adaptive.bias must be >= 0");
        return std::make_unique<AdaptiveMechanism>(bias);
    };
    mechanismRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(AdaptiveMechanism)

} // namespace core
} // namespace gpump
