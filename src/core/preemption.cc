#include "core/preemption.hh"

#include "core/context_switch.hh"
#include "core/draining.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

std::unique_ptr<PreemptionMechanism>
makeMechanism(const std::string &name)
{
    if (name == "context_switch" || name == "cs")
        return std::make_unique<ContextSwitchMechanism>();
    if (name == "draining" || name == "drain")
        return std::make_unique<DrainingMechanism>();
    sim::fatal("unknown preemption mechanism '%s' "
               "(expected context_switch or draining)",
               name.c_str());
}

} // namespace core
} // namespace gpump
