#include "core/preemption.hh"

namespace gpump {
namespace core {

MechanismRegistry &
mechanismRegistry()
{
    static MechanismRegistry registry("preemption mechanism");
    return registry;
}

void
linkBuiltinMechanisms()
{
    // Keep the built-in registrants' archive members linked (see
    // registry.hh on the static-library anchor pattern).
    GPUMP_FORCE_LINK(ContextSwitchMechanism);
    GPUMP_FORCE_LINK(DrainingMechanism);
    GPUMP_FORCE_LINK(AdaptiveMechanism);
    GPUMP_FORCE_LINK(ProactiveMemMechanism);
    GPUMP_FORCE_LINK(PredAdaptiveMechanism);
}

std::unique_ptr<PreemptionMechanism>
makeMechanism(const std::string &name, const sim::Config &cfg)
{
    linkBuiltinMechanisms();
    return mechanismRegistry().make(name, cfg);
}

} // namespace core
} // namespace gpump
