/**
 * @file
 * The baseline first-come first-serve policy (Section 2.3).
 *
 * Models today's GPUs: kernel commands are admitted and scheduled in
 * arrival order; the execution engine runs one context at a time
 * (kernels from a different context wait until the engine drains);
 * independent kernels of the *same* context execute back to back on
 * SMs that free up.  Never preempts.
 */

#ifndef GPUMP_CORE_FCFS_HH
#define GPUMP_CORE_FCFS_HH

#include "core/policy.hh"

namespace gpump {
namespace core {

/** Baseline FCFS scheduling. */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

  private:
    void admit();
    void schedule();
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_FCFS_HH
