#include "core/priority.hh"

#include <algorithm>

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

// ---------------------------------------------------------------- NPQ

void
NpqPolicy::onCommandWaiting(sim::ContextId)
{
    admit();
    schedule();
}

void
NpqPolicy::onSmIdle(gpu::Sm *)
{
    schedule();
}

void
NpqPolicy::onKernelFinished(gpu::KernelExec *)
{
    admit();
    schedule();
}

void
NpqPolicy::onPreemptionComplete(gpu::Sm *, gpu::KernelExec *)
{
    sim::panic("NPQ policy received a preemption completion");
}

void
NpqPolicy::admit()
{
    while (!fw_->activeQueueFull()) {
        // waitingScratch_ is reused across calls: admission runs on
        // every command arrival, so the probe must not allocate.
        fw_->waitingBuffers(waitingScratch_);
        if (waitingScratch_.empty())
            break;
        // Highest buffered priority first; FCFS within a level
        // (waitingBuffers is already in arrival order).
        sim::ContextId best = waitingScratch_.front();
        int best_prio = fw_->bufferedCommand(best)->priority;
        for (sim::ContextId ctx : waitingScratch_) {
            int prio = fw_->bufferedCommand(ctx)->priority;
            if (prio > best_prio) {
                best = ctx;
                best_prio = prio;
            }
        }
        fw_->admit(best);
    }
}

std::vector<gpu::KernelExec *>
NpqPolicy::sortedActive() const
{
    // Descending effective priority, ascending arrival within a level.
    std::vector<gpu::KernelExec *> sorted = fw_->activeKernels();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [this](const gpu::KernelExec *a,
                            const gpu::KernelExec *b) {
                         int pa = effectivePriority(a);
                         int pb = effectivePriority(b);
                         if (pa != pb)
                             return pa > pb;
                         return a->seq() < b->seq();
                     });
    return sorted;
}

void
NpqPolicy::schedule()
{
    // One context at a time on the engine: NPQ reorders the execution
    // queue but does not add multi-context support.
    sim::ContextId window = fw_->engineContext();
    for (gpu::KernelExec *k : sortedActive()) {
        if (window != sim::invalidContext && k->ctx() != window)
            continue;
        while (fw_->unallocatedTbs(k) > 0) {
            gpu::Sm *sm = fw_->findIdleSm();
            if (!sm)
                return;
            fw_->assignSm(sm, k);
            window = k->ctx();
        }
    }
}

// ---------------------------------------------------------------- PPQ

void
PpqPolicy::onCommandWaiting(sim::ContextId)
{
    admit();
    preempt();
    scheduleWithMode();
}

void
PpqPolicy::onKernelFinished(gpu::KernelExec *)
{
    admit();
    preempt();
    scheduleWithMode();
}

void
PpqPolicy::onSmIdle(gpu::Sm *)
{
    scheduleWithMode();
}

void
PpqPolicy::onPreemptionComplete(gpu::Sm *, gpu::KernelExec *)
{
    // The vacated SM is idle; priority-ordered scheduling hands it to
    // the reservation's beneficiary (the top-priority kernel).
    scheduleWithMode();
}

int
PpqPolicy::needExtra(const gpu::KernelExec *k) const
{
    return fw_->unallocatedTbs(k) - k->smsReserved * k->occupancy();
}

void
PpqPolicy::preempt()
{
    for (;;) {
        // Highest-priority kernel that still needs SM capacity.
        gpu::KernelExec *hp = nullptr;
        for (gpu::KernelExec *k : sortedActive()) {
            if (needExtra(k) > 0) {
                hp = k;
                break;
            }
        }
        if (!hp)
            return;

        // Victim: the first (lowest-id) SM running a strictly
        // lower-priority kernel.  The hardware has no preview of drain
        // times, so the pick is positional, not latency-aware.
        gpu::Sm *victim = nullptr;
        for (const auto &sm : fw_->sms()) {
            if (!sm->kernel || sm->reserved)
                continue;
            if (effectivePriority(sm->kernel) >= effectivePriority(hp))
                continue;
            if (sm->state != gpu::Sm::State::Running &&
                sm->state != gpu::Sm::State::Setup) {
                continue;
            }
            victim = sm.get();
            break;
        }
        if (!victim)
            return;
        fw_->reserveSm(victim, hp);
    }
}

void
PpqPolicy::scheduleWithMode()
{
    auto sorted = sortedActive();
    if (sorted.empty())
        return;
    // PPQ relies on the multiprogramming extensions: kernels from
    // different contexts may occupy disjoint SM sets concurrently, so
    // no engine-context window applies here.
    int top = effectivePriority(sorted.front());
    for (gpu::KernelExec *k : sorted) {
        if (exclusive_ && effectivePriority(k) < top)
            break; // no back-filling below the top priority level
        while (fw_->unallocatedTbs(k) > 0) {
            gpu::Sm *sm = fw_->findIdleSm();
            if (!sm)
                return;
            fw_->assignSm(sm, k);
        }
    }
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_priority = [] {
    PolicyRegistry::Descriptor npq;
    npq.name = "npq";
    npq.doc = "Non-preemptive priority queues (Section 4.2): highest "
              "priority admitted and scheduled first, running kernels "
              "never disturbed, one context at a time";
    npq.usesMechanism = false; // never reserves an SM
    npq.factory = [](const sim::Config &) {
        return std::make_unique<NpqPolicy>();
    };
    policyRegistry().add(std::move(npq));

    PolicyRegistry::Descriptor excl;
    excl.name = "ppq_excl";
    excl.doc = "Preemptive priority queues, exclusive mode "
               "(Section 4.3): the top priority level owns the whole "
               "engine; lower priorities wait";
    excl.factory = [](const sim::Config &) {
        return std::make_unique<PpqPolicy>(/*exclusive=*/true);
    };
    policyRegistry().add(std::move(excl));

    PolicyRegistry::Descriptor shared;
    shared.name = "ppq_shared";
    shared.doc = "Preemptive priority queues, shared mode "
                 "(Section 4.3): lower priorities back-fill SMs the "
                 "top level leaves free";
    shared.factory = [](const sim::Config &) {
        return std::make_unique<PpqPolicy>(/*exclusive=*/false);
    };
    policyRegistry().add(std::move(shared));

    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(PriorityPolicies)

} // namespace core
} // namespace gpump
