/**
 * @file
 * Time multiplexing on top of the scheduling framework.
 *
 * Section 3.3 notes that "scheduling policies performing
 * prioritization, time multiplexing, spatial sharing or some
 * combination of these can be implemented on top of" the framework.
 * This policy implements the classic OS alternative to DSS: active
 * kernels take turns owning the whole execution engine for a time
 * quantum; on expiry every SM of the outgoing kernel is reserved for
 * the incoming one and vacated through whichever preemption mechanism
 * is installed.
 *
 * Work conservation: idle SMs the current kernel cannot use are
 * back-filled by the next kernels in ring order (the same rationale
 * as same-context back-to-back execution on the baseline).
 */

#ifndef GPUMP_CORE_TIMEMUX_HH
#define GPUMP_CORE_TIMEMUX_HH

#include <cstdint>

#include "core/policy.hh"
#include "sim/event.hh"

namespace gpump {
namespace core {

/** Round-robin whole-engine time slicing. */
class TimeMuxPolicy : public SchedulingPolicy
{
  public:
    /** @param quantum engine time slice per kernel. */
    explicit TimeMuxPolicy(sim::SimTime quantum);

    const char *name() const override { return "tmux"; }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

    sim::SimTime quantum() const { return quantum_; }

    /** Slot rotations performed (for tests/benches). */
    std::uint64_t rotations() const { return rotations_; }

  private:
    void admit();
    /** The kernel owning the current slice (ring position). */
    gpu::KernelExec *current() const;
    /** Hand idle SMs out: current first, then ring order. */
    void schedule();
    /** Advance the ring and preempt the outgoing kernel's SMs. */
    void rotate();
    void armTimer();

    sim::SimTime quantum_;
    /** Admission-order index of the slice owner. */
    std::size_t ringPos_ = 0;
    sim::EventQueue::Handle timer_;
    std::uint64_t rotations_ = 0;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_TIMEMUX_HH
