#include "core/dss.hh"

#include <algorithm>

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

DssPolicy::DssPolicy(int tokens_per_kernel, int bonus_tokens,
                     bool retarget, bool weight_by_priority)
    : tokensPerKernel_(tokens_per_kernel), bonusPool_(bonus_tokens),
      retarget_(retarget), weightByPriority_(weight_by_priority)
{
    GPUMP_ASSERT(tokens_per_kernel >= 0 && bonus_tokens >= 0,
                 "negative DSS token budget");
}

void
DssPolicy::onCommandWaiting(sim::ContextId)
{
    admit();
    partition();
}

void
DssPolicy::onSmIdle(gpu::Sm *)
{
    partition();
}

void
DssPolicy::onKernelFinished(gpu::KernelExec *k)
{
    if (k->hasBonusToken)
        ++bonusPool_; // the remainder token returns to the pool
    admit();
    partition();
}

void
DssPolicy::onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next)
{
    // The token for this SM was paid when the reservation was made.
    if (next != nullptr && fw_->unallocatedTbs(next) > 0) {
        fw_->assignSm(sm, next);
        return;
    }
    // The beneficiary finished or no longer has work: refund the
    // paid token (unless the kernel is gone) and repartition.
    if (next != nullptr)
        ++next->tokens;
    partition();
}

void
DssPolicy::admit()
{
    while (!fw_->activeQueueFull()) {
        sim::ContextId ctx = fw_->frontWaitingBuffer();
        if (ctx == sim::invalidContext)
            break;
        gpu::KernelExec *k = fw_->admit(ctx);
        int weight = weightByPriority_
            ? 1 + std::max(0, k->priority())
            : 1;
        k->tokens = tokensPerKernel_ * weight;
        if (bonusPool_ > 0) {
            --bonusPool_;
            ++k->tokens;
            k->hasBonusToken = true;
        }
    }
}

int
DssPolicy::needExtra(const gpu::KernelExec *k) const
{
    return fw_->unallocatedTbs(k) - k->smsReserved * k->occupancy();
}

gpu::KernelExec *
DssPolicy::findMax() const
{
    gpu::KernelExec *best = nullptr;
    for (gpu::KernelExec *k : fw_->activeKernels()) {
        if (needExtra(k) <= 0)
            continue;
        if (!best || k->tokens > best->tokens)
            best = k; // admission order breaks ties
    }
    return best;
}

gpu::KernelExec *
DssPolicy::findMin() const
{
    gpu::KernelExec *best = nullptr;
    for (gpu::KernelExec *k : fw_->activeKernels()) {
        if (pickVictim(k) == nullptr)
            continue;
        if (!best || k->tokens < best->tokens ||
            (k->tokens == best->tokens && k->smsHeld > best->smsHeld)) {
            best = k;
        }
    }
    return best;
}

gpu::Sm *
DssPolicy::pickVictim(gpu::KernelExec *k) const
{
    // "One of its assigned SMs" (Section 3.4): the pick is positional
    // (lowest id); the hardware has no preview of drain times.
    for (const auto &sm : fw_->sms()) {
        if (sm->kernel != k || sm->reserved)
            continue;
        if (sm->state != gpu::Sm::State::Running &&
            sm->state != gpu::Sm::State::Setup) {
            continue;
        }
        return sm.get();
    }
    return nullptr;
}

void
DssPolicy::partition()
{
    // Reservations of Setup SMs complete synchronously and re-enter
    // the policy; flatten the recursion into a retry loop.
    if (inPartition_) {
        partitionAgain_ = true;
        return;
    }
    inPartition_ = true;
    do {
        partitionAgain_ = false;
        partitionLoop();
    } while (partitionAgain_);
    inPartition_ = false;
}

void
DssPolicy::retargetOrphans()
{
    for (const auto &sm : fw_->sms()) {
        if (!sm->reserved)
            continue;
        gpu::KernelExec *next = sm->nextKernel;
        if (next != nullptr && fw_->unallocatedTbs(next) > 0)
            continue; // reservation is still useful
        gpu::KernelExec *max_k = findMax();
        if (!max_k || max_k == sm->kernel)
            continue;
        if (next != nullptr)
            ++next->tokens; // refund the saturated beneficiary
        --max_k->tokens;
        fw_->retargetReservation(sm.get(), max_k);
    }
}

void
DssPolicy::partitionLoop()
{
    if (retarget_)
        retargetOrphans();

    for (;;) {
        gpu::KernelExec *max_k = findMax();
        if (!max_k)
            return; // nobody can use more SMs

        gpu::Sm *idle = fw_->findIdleSm();
        if (idle != nullptr) {
            // Idle SMs are never wasted: the richest kernel takes
            // them even if that drives it into debt (Section 3.4).
            --max_k->tokens;
            fw_->assignSm(idle, max_k);
            continue;
        }

        gpu::KernelExec *min_k = findMin();
        if (!min_k || min_k == max_k)
            return;
        // Steady state: stop when the spread is at most one token
        // (prevents repartitioning livelock, Section 3.4).
        if (max_k->tokens <= min_k->tokens + 1)
            return;

        gpu::Sm *victim = pickVictim(min_k);
        GPUMP_ASSERT(victim != nullptr, "findMin returned kernel "
                     "without preemptible SMs");
        // Token transfer happens at reservation time (Algorithm 1).
        ++min_k->tokens;
        --max_k->tokens;
        fw_->reserveSm(victim, max_k);
    }
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_dss = [] {
    PolicyRegistry::Descriptor d;
    d.name = "dss";
    d.doc = "Dynamic Spatial Sharing (Section 3.4, Algorithm 1): "
            "token-based SM partitioning with debt, rebalanced by "
            "preempting the token-poorest kernel";
    d.configPrefix = "dss";
    d.tunables = {
        {"dss.tokens_per_kernel", TunableType::Int, "",
         "SM budget granted per kernel on admission; default "
         "floor(NSMs/Nprocs), the paper's equal share"},
        {"dss.bonus_tokens", TunableType::Int, "",
         "remainder tokens r = NSMs mod Nprocs, granted one each to "
         "the first r admitted kernels; defaults to the remainder "
         "when dss.tokens_per_kernel also defaults, else 0"},
        {"dss.retarget", TunableType::Bool, "true",
         "re-target in-flight reservations whose beneficiary no "
         "longer needs the SM (Section 3.4 optimisation)"},
        {"dss.weight_by_priority", TunableType::Bool, "false",
         "scale each kernel's token grant by (1 + process priority): "
         "OS-controlled weighted sharing"},
    };
    // Equal sharing (Section 4.4) needs the machine and workload
    // sizes, which only exist at system assembly.  The pair default
    // applies only while the token budget itself defaults — the
    // remainder is meaningless next to a caller-chosen budget — and
    // an explicitly set bonus is never overwritten.
    d.assemblyDefaults = [](sim::Config &cfg, int num_sms,
                            int num_processes) {
        if (num_processes > 0 && !cfg.has("dss.tokens_per_kernel")) {
            cfg.set("dss.tokens_per_kernel",
                    static_cast<std::int64_t>(num_sms / num_processes));
            if (!cfg.has("dss.bonus_tokens")) {
                cfg.set("dss.bonus_tokens",
                        static_cast<std::int64_t>(num_sms %
                                                  num_processes));
            }
        }
    };
    d.factory = [](const sim::Config &cfg) {
        int tokens = static_cast<int>(
            cfg.getInt("dss.tokens_per_kernel", 1));
        int bonus = static_cast<int>(cfg.getInt("dss.bonus_tokens", 0));
        bool retarget = cfg.getBool("dss.retarget", true);
        bool weighted = cfg.getBool("dss.weight_by_priority", false);
        return std::make_unique<DssPolicy>(tokens, bonus, retarget,
                                           weighted);
    };
    policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(DssPolicy)

} // namespace core
} // namespace gpump
