/**
 * @file
 * Preemption mechanisms (Section 3.2).
 *
 * A mechanism answers one question: how does an SM that the policy
 * reserved get vacated?  Built-in implementations:
 *  - ContextSwitchMechanism: stop the SM, save the architectural
 *    context of every resident thread block to off-chip memory, and
 *    queue the blocks for later re-issue (classic OS-style preemption);
 *  - DrainingMechanism: stop issuing new thread blocks and let the
 *    resident ones run to completion (preemption at the thread-block
 *    boundary the programming model guarantees);
 *  - AdaptiveMechanism (core/adaptive.hh): picks one of the above per
 *    SM from the estimated drain time vs. the modeled save cost.
 *
 * Mechanisms are policy-agnostic; policies are mechanism-agnostic
 * (Section 3: "mechanisms separated from policies").  Like policies,
 * mechanisms self-register in mechanismRegistry() (core/registry.hh)
 * and can be added from outside src/ entirely.
 */

#ifndef GPUMP_CORE_PREEMPTION_HH
#define GPUMP_CORE_PREEMPTION_HH

#include <memory>
#include <string>

#include "core/registry.hh"
#include "gpu/sm.hh"
#include "sim/config.hh"

namespace gpump {
namespace core {

class SchedulingFramework;

/** Abstract preemption mechanism. */
class PreemptionMechanism
{
  public:
    virtual ~PreemptionMechanism() = default;

    /** Mechanism name for reports (the registry's canonical name). */
    virtual const char *name() const = 0;

    /** True when the mechanism saves/restores context (and therefore
     *  needs the PTBQs to exist). */
    virtual bool savesContext() const = 0;

    /**
     * Begin vacating @p sm.  The SM is already flagged reserved and
     * is in the Running state with at least one resident thread
     * block.  The mechanism must eventually cause
     * SchedulingFramework::completePreemption(sm) to run.
     */
    virtual void beginPreemption(gpu::Sm *sm) = 0;

    /** Wire to the owning framework (called once at assembly).
     *  Composite mechanisms override this to bind their parts. */
    virtual void bind(SchedulingFramework &fw) { fw_ = &fw; }

  protected:
    SchedulingFramework *fw_ = nullptr;
};

/** The process-wide registry of preemption mechanisms. */
using MechanismRegistry = SchemeRegistry<PreemptionMechanism>;
MechanismRegistry &mechanismRegistry();

/** Reference the link anchors of every built-in mechanism (see
 *  linkBuiltinPolicies for why this exists). */
void linkBuiltinMechanisms();

/**
 * Mechanism factory: a thin lookup into mechanismRegistry().
 *
 * @param name a registered mechanism ("context_switch"/"cs",
 *             "draining"/"drain", "adaptive", or anything registered
 *             out of tree).
 * @param cfg  mechanism tunables (e.g. "adaptive.bias").
 *
 * Raises fatal() for unknown names (listing every registered
 * mechanism) and for unknown or ill-typed keys under any
 * mechanism-claimed config namespace.
 */
std::unique_ptr<PreemptionMechanism>
makeMechanism(const std::string &name,
              const sim::Config &cfg = sim::Config());

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_PREEMPTION_HH
