/**
 * @file
 * Preemption mechanisms (Section 3.2).
 *
 * A mechanism answers one question: how does an SM that the policy
 * reserved get vacated?  Two implementations exist:
 *  - ContextSwitchMechanism: stop the SM, save the architectural
 *    context of every resident thread block to off-chip memory, and
 *    queue the blocks for later re-issue (classic OS-style preemption);
 *  - DrainingMechanism: stop issuing new thread blocks and let the
 *    resident ones run to completion (preemption at the thread-block
 *    boundary the programming model guarantees).
 *
 * Mechanisms are policy-agnostic; policies are mechanism-agnostic
 * (Section 3: "mechanisms separated from policies").
 */

#ifndef GPUMP_CORE_PREEMPTION_HH
#define GPUMP_CORE_PREEMPTION_HH

#include <memory>
#include <string>

#include "gpu/sm.hh"

namespace gpump {
namespace core {

class SchedulingFramework;

/** Abstract preemption mechanism. */
class PreemptionMechanism
{
  public:
    virtual ~PreemptionMechanism() = default;

    /** Mechanism name for reports ("context_switch" / "draining"). */
    virtual const char *name() const = 0;

    /** True when the mechanism saves/restores context (and therefore
     *  needs the PTBQs to exist). */
    virtual bool savesContext() const = 0;

    /**
     * Begin vacating @p sm.  The SM is already flagged reserved and
     * is in the Running state with at least one resident thread
     * block.  The mechanism must eventually cause
     * SchedulingFramework::completePreemption(sm) to run.
     */
    virtual void beginPreemption(gpu::Sm *sm) = 0;

    /** Wire to the owning framework (called once at assembly). */
    void bind(SchedulingFramework &fw) { fw_ = &fw; }

  protected:
    SchedulingFramework *fw_ = nullptr;
};

/**
 * Factory: "context_switch" or "draining"; raises fatal() otherwise.
 */
std::unique_ptr<PreemptionMechanism>
makeMechanism(const std::string &name);

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_PREEMPTION_HH
