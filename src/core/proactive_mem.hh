/**
 * @file
 * Memory-aware proactive context switching.
 *
 * A context switch is two data movements: the victim's save (D2H) and
 * the incoming kernel's restores (H2D).  The base mechanism serialises
 * them — restores start only when preempted blocks re-issue on the
 * vacated SM.  This mechanism overlaps them: at reservation time it
 * already knows which kernel the SM is promised to, so it stages
 * restore fetches for that kernel's preempted blocks while the victim
 * is still draining and saving.  When the fetches land the blocks
 * carry restore credit (gpu/kernel_exec.hh) and re-issue without the
 * inline restore cost.
 *
 * The overlap matters most under the contended-switch model
 * (gmem.contended_switch), where saves and restores queue on the
 * transfer path: prefetching moves the restore wait off the critical
 * path of the switch.  Under the default share model the fetch still
 * runs ahead at the bandwidth-share rate, shaving the restore term off
 * re-issued blocks' runtimes.
 *
 * Registers as "proactive_mem" with the "proactive_mem.lookahead"
 * tunable; built entirely on the public mechanism + framework API
 * (an out-of-tree mechanism could do the same).
 */

#ifndef GPUMP_CORE_PROACTIVE_MEM_HH
#define GPUMP_CORE_PROACTIVE_MEM_HH

#include <cstdint>

#include "core/context_switch.hh"

namespace gpump {
namespace core {

/** Context switch with restore prefetch for the reservation target. */
class ProactiveMemMechanism : public PreemptionMechanism
{
  public:
    /** @param lookahead max preempted TBs to stage per preemption;
     *         must be > 0. */
    explicit ProactiveMemMechanism(int lookahead = 16);

    const char *name() const override { return "proactive_mem"; }
    bool savesContext() const override { return true; }

    void bind(SchedulingFramework &fw) override;
    void beginPreemption(gpu::Sm *sm) override;

    int lookahead() const { return lookahead_; }

    /** @name Decision counters (tests, analyses)
     * @{ */
    /** Preemptions where at least one restore fetch was staged. */
    std::uint64_t prefetchesIssued() const { return prefetches_; }
    /** Preemptions with nothing to stage (no reservation target, an
     *  empty PTBQ, or every entry already covered). */
    std::uint64_t prefetchesSkipped() const { return skips_; }
    /** Preempted TBs staged across all preemptions. */
    std::uint64_t tbsStaged() const { return tbsStaged_; }
    /** @} */

  private:
    int lookahead_;
    ContextSwitchMechanism contextSwitch_;
    std::uint64_t prefetches_ = 0;
    std::uint64_t skips_ = 0;
    std::uint64_t tbsStaged_ = 0;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_PROACTIVE_MEM_HH
