/**
 * @file
 * Compile-time-gated invariant-audit layer (DESIGN.md §12).
 *
 * GPUMP_AUDIT(cond, fmt, ...) states a deep internal invariant at a
 * hot seam — the checks that are too expensive, too paranoid or too
 * far inside a data structure for an always-on GPUMP_ASSERT.  In a
 * default build the macro compiles to nothing (the condition sits in
 * an unevaluated sizeof, so audit-only expressions still parse and
 * their operands count as used, but no code is generated).  Configure
 * with -DGPUMP_AUDIT_BUILD=ON and every audit is checked; a failure
 * prints the condition, location and message to stderr and calls
 * abort() — NOT panic()/fatal(), deliberately:
 *
 *  - an audit failure means simulator state is already corrupt, so
 *    unwinding through it (what an exception does) can only make the
 *    report worse;
 *  - abort() is what gtest's EXPECT_DEATH harness expects, so the
 *    audit layer is itself testable (tests/test_audit.cpp).
 *
 * Layering: this header is dependency-free (cstdio/cstdlib only) by
 * design, so EVERY layer — sim/, memory/, gpu/, core/, predict/,
 * harness/ — may include it without creating a link-order or layering
 * violation (memory/ must not depend on core/ code; a macro header
 * with no runtime library is not a dependency in that sense).
 *
 * Audit-only state or O(n) verification loops that should not even be
 * *compiled* into default builds go under `#if GPUMP_AUDIT_ENABLED`.
 *
 * The invariant catalog lives in DESIGN.md §12; keep it in sync when
 * adding audits.
 */

#ifndef GPUMP_CORE_AUDIT_HH
#define GPUMP_CORE_AUDIT_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#if defined(GPUMP_AUDIT_BUILD) && GPUMP_AUDIT_BUILD
#define GPUMP_AUDIT_ENABLED 1
#else
#define GPUMP_AUDIT_ENABLED 0
#endif

namespace gpump {
namespace core {

#if GPUMP_AUDIT_ENABLED

/** Report a failed audit and abort.  Out-of-line-ish (static inline
 *  in a header to stay dependency-free); the cold path's size does
 *  not matter. */
[[noreturn]] __attribute__((format(printf, 4, 5))) inline void
auditFail(const char *file, int line, const char *cond, const char *fmt,
          ...)
{
    std::fprintf(stderr, "GPUMP_AUDIT failed at %s:%d\n  invariant: %s\n  ",
                 file, line, cond);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
}

#endif // GPUMP_AUDIT_ENABLED

} // namespace core
} // namespace gpump

#if GPUMP_AUDIT_ENABLED

/** Check a deep invariant in audit builds; no-op otherwise.  The
 *  message should say what the corrupted state means, not restate the
 *  condition. */
#define GPUMP_AUDIT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::gpump::core::auditFail(__FILE__, __LINE__, #cond,             \
                                     __VA_ARGS__);                          \
    } while (0)

#else

// The condition is parsed (so audit expressions cannot rot and their
// operands count as used) but never evaluated, and no code is
// generated.  The message arguments are discarded entirely; keep
// audit-only message operands out of default builds via
// GPUMP_AUDIT_ENABLED.
#define GPUMP_AUDIT(cond, ...)                                              \
    do {                                                                    \
        (void)sizeof((cond));                                               \
    } while (0)

#endif // GPUMP_AUDIT_ENABLED

#endif // GPUMP_CORE_AUDIT_HH
