#include "core/policy.hh"

#include "core/dss.hh"
#include "core/fcfs.hh"
#include "core/priority.hh"
#include "core/timemux.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

std::unique_ptr<SchedulingPolicy>
makePolicy(const std::string &name, const sim::Config &cfg)
{
    if (name == "fcfs")
        return std::make_unique<FcfsPolicy>();
    if (name == "npq")
        return std::make_unique<NpqPolicy>();
    if (name == "ppq_excl")
        return std::make_unique<PpqPolicy>(/*exclusive=*/true);
    if (name == "ppq_shared")
        return std::make_unique<PpqPolicy>(/*exclusive=*/false);
    if (name == "dss") {
        int tokens = static_cast<int>(
            cfg.getInt("dss.tokens_per_kernel", 1));
        int bonus = static_cast<int>(cfg.getInt("dss.bonus_tokens", 0));
        bool retarget = cfg.getBool("dss.retarget", true);
        bool weighted = cfg.getBool("dss.weight_by_priority", false);
        return std::make_unique<DssPolicy>(tokens, bonus, retarget,
                                           weighted);
    }
    if (name == "tmux") {
        double quantum_us = cfg.getDouble("tmux.quantum_us", 200.0);
        if (quantum_us <= 0)
            sim::fatal("tmux.quantum_us must be positive");
        return std::make_unique<TimeMuxPolicy>(
            sim::microseconds(quantum_us));
    }
    sim::fatal("unknown scheduling policy '%s' (expected fcfs, npq, "
               "ppq_excl, ppq_shared, dss or tmux)",
               name.c_str());
}

} // namespace core
} // namespace gpump
