#include "core/policy.hh"

namespace gpump {
namespace core {

PolicyRegistry &
policyRegistry()
{
    static PolicyRegistry registry("scheduling policy");
    return registry;
}

void
linkBuiltinPolicies()
{
    // Built-in policies live in gpump's static archive; their
    // registrar objects run only if the linker keeps their object
    // files, which these anchor references guarantee.  Out-of-tree
    // registrants are part of the executable and need no anchor.
    GPUMP_FORCE_LINK(FcfsPolicy);
    GPUMP_FORCE_LINK(PriorityPolicies);
    GPUMP_FORCE_LINK(DssPolicy);
    GPUMP_FORCE_LINK(TimeMuxPolicy);
    GPUMP_FORCE_LINK(PpqAgingPolicy);
    GPUMP_FORCE_LINK(BoreBurstPolicy);
}

std::unique_ptr<SchedulingPolicy>
makePolicy(const std::string &name, const sim::Config &cfg)
{
    linkBuiltinPolicies();
    return policyRegistry().make(name, cfg);
}

} // namespace core
} // namespace gpump
