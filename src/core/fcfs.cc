#include "core/fcfs.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

void
FcfsPolicy::onCommandWaiting(sim::ContextId)
{
    admit();
    schedule();
}

void
FcfsPolicy::onSmIdle(gpu::Sm *)
{
    schedule();
}

void
FcfsPolicy::onKernelFinished(gpu::KernelExec *)
{
    admit();
    schedule();
}

void
FcfsPolicy::onPreemptionComplete(gpu::Sm *, gpu::KernelExec *)
{
    // FCFS never reserves an SM; nothing can complete.
    sim::panic("FCFS policy received a preemption completion");
}

void
FcfsPolicy::admit()
{
    while (!fw_->activeQueueFull()) {
        sim::ContextId ctx = fw_->frontWaitingBuffer();
        if (ctx == sim::invalidContext)
            break;
        fw_->admit(ctx);
    }
}

namespace {

[[maybe_unused]] const bool registered_fcfs = [] {
    PolicyRegistry::Descriptor d;
    d.name = "fcfs";
    d.doc = "Baseline GPU: kernels run in arrival order, one context "
            "at a time on the engine, back-to-back within a context "
            "(Section 2.3)";
    d.usesMechanism = false; // never reserves an SM
    d.factory = [](const sim::Config &) {
        return std::make_unique<FcfsPolicy>();
    };
    policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(FcfsPolicy)

void
FcfsPolicy::schedule()
{
    const auto &active = fw_->activeKernels();
    if (active.empty())
        return;

    // Strict arrival order with head-of-line blocking across
    // contexts: the schedulable window is the leading run of kernels
    // that share the front kernel's context, and it only opens once
    // the engine holds no other context.
    sim::ContextId window_ctx = active.front()->ctx();
    sim::ContextId engine_ctx = fw_->engineContext();
    if (engine_ctx != sim::invalidContext && engine_ctx != window_ctx)
        return;

    for (gpu::KernelExec *k : active) {
        if (k->ctx() != window_ctx)
            break;
        while (fw_->unallocatedTbs(k) > 0) {
            gpu::Sm *sm = fw_->findIdleSm();
            if (!sm)
                return;
            fw_->assignSm(sm, k);
        }
    }
}

} // namespace core
} // namespace gpump
