#include "core/framework.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/audit.hh"
#include "core/policy.hh"
#include "gpu/transfer_engine.hh"
#include "memory/residency.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

SchedulingFramework::SchedulingFramework(sim::Simulation &sim,
                                         const gpu::GpuParams &params,
                                         memory::GpuMemory &gmem,
                                         gpu::Dispatcher &dispatcher)
    : sim_(&sim), params_(params), gmem_(&gmem), dispatcher_(&dispatcher),
      kernelsCompleted_(sim.stats(), "engine.kernels_completed",
                        "kernels that ran to completion"),
      tbsCompleted_(sim.stats(), "engine.tbs_completed",
                    "thread blocks completed"),
      tbsRestored_(sim.stats(), "engine.tbs_restored",
                   "preempted thread blocks re-issued"),
      preemptions_(sim.stats(), "engine.preemptions",
                   "SM preemptions triggered"),
      ctxBytesSaved_(sim.stats(), "engine.ctx_bytes_saved",
                     "context bytes written back on preemption"),
      tbsSaved_(sim.stats(), "engine.tbs_saved",
                "thread blocks context-switched out"),
      tbsPrefetched_(sim.stats(), "engine.tbs_prefetched",
                     "preempted TBs granted restore credit"),
      ctxTransfers_(sim.stats(), "engine.ctx_transfers",
                    "driver-originated transfer commands"),
      preemptLatencyUs_(sim.stats(), "engine.preempt_latency_us",
                        "reservation-to-vacated latency (us)"),
      kernelQueueTimeUs_(sim.stats(), "engine.kernel_queue_us",
                         "enqueue-to-first-setup time of kernels (us)"),
      ptbqDepth_(sim.stats(), "engine.ptbq_depth",
                 "PTBQ occupancy after context saves")
{
    preemptedFirst_ =
        sim.config().getBool("engine.preempted_first", true);
    contendedSwitch_ = gmem.params().contendedSwitch;
    sms_.reserve(static_cast<std::size_t>(params_.numSms));
    for (int i = 0; i < params_.numSms; ++i)
        sms_.push_back(std::make_unique<gpu::Sm>(i, 64));
    ksrt_.resize(static_cast<std::size_t>(maxActiveKernels(params_)));
    for (int i = maxActiveKernels(params_) - 1; i >= 0; --i)
        freeKsrs_.push_back(i);
    reserveTime_.assign(sms_.size(), 0);
    dispatcher_->setKernelSink(this);
}

SchedulingFramework::~SchedulingFramework() = default;

void
SchedulingFramework::setPolicy(std::unique_ptr<SchedulingPolicy> policy)
{
    GPUMP_ASSERT(policy != nullptr, "null policy");
    policy_ = std::move(policy);
    policy_->bind(*this);
}

void
SchedulingFramework::setMechanism(
    std::unique_ptr<PreemptionMechanism> mechanism)
{
    GPUMP_ASSERT(mechanism != nullptr, "null mechanism");
    mechanism_ = std::move(mechanism);
    mechanism_->bind(*this);
}

bool
SchedulingFramework::offerKernel(const gpu::CommandPtr &cmd)
{
    GPUMP_ASSERT(cmd && cmd->isKernel(), "offerKernel with non-kernel");
    GPUMP_ASSERT(policy_ != nullptr, "no scheduling policy installed");
    GPUMP_ASSERT(cmd->ctx >= 0, "kernel command with invalid context");
    auto idx = static_cast<std::size_t>(cmd->ctx);
    if (idx >= buffers_.size())
        buffers_.resize(idx + 1);
    if (buffers_[idx] != nullptr)
        return false; // buffer occupied
    buffers_[idx] = cmd;
    ++buffered_;
    policy_->onCommandWaiting(cmd->ctx);
    return true;
}

std::vector<sim::ContextId>
SchedulingFramework::waitingBuffers() const
{
    std::vector<sim::ContextId> out;
    waitingBuffers(out);
    return out;
}

void
SchedulingFramework::waitingBuffers(std::vector<sim::ContextId> &out) const
{
    out.clear();
    out.reserve(buffered_);
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
        if (buffers_[i] != nullptr)
            out.push_back(static_cast<sim::ContextId>(i));
    }
    std::sort(out.begin(), out.end(),
              [this](sim::ContextId a, sim::ContextId b) {
                  return buffers_[static_cast<std::size_t>(a)]->seq <
                      buffers_[static_cast<std::size_t>(b)]->seq;
              });
}

sim::ContextId
SchedulingFramework::frontWaitingBuffer() const
{
    if (buffered_ == 0)
        return sim::invalidContext;
    sim::ContextId front = sim::invalidContext;
    std::uint64_t front_seq = 0;
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
        const gpu::CommandPtr &cmd = buffers_[i];
        if (cmd == nullptr)
            continue;
        if (front == sim::invalidContext || cmd->seq < front_seq) {
            front = static_cast<sim::ContextId>(i);
            front_seq = cmd->seq;
        }
    }
    return front;
}

bool
SchedulingFramework::hasBufferedCommand(sim::ContextId ctx) const
{
    auto idx = static_cast<std::size_t>(ctx);
    return ctx >= 0 && idx < buffers_.size() && buffers_[idx] != nullptr;
}

const gpu::CommandPtr &
SchedulingFramework::bufferedCommand(sim::ContextId ctx) const
{
    GPUMP_ASSERT(hasBufferedCommand(ctx),
                 "no buffered command for ctx %d", ctx);
    return buffers_[static_cast<std::size_t>(ctx)];
}

bool
SchedulingFramework::activeQueueFull() const
{
    return static_cast<int>(activeQueue_.size()) >=
        maxActiveKernels(params_);
}

int
SchedulingFramework::numActiveKernels() const
{
    return static_cast<int>(activeQueue_.size());
}

gpu::KernelExec *
SchedulingFramework::admit(sim::ContextId ctx)
{
    GPUMP_ASSERT(!activeQueueFull(), "admit with a full active queue");
    GPUMP_ASSERT(hasBufferedCommand(ctx),
                 "admit for ctx %d with empty command buffer", ctx);

    gpu::CommandPtr cmd =
        std::move(buffers_[static_cast<std::size_t>(ctx)]);
    buffers_[static_cast<std::size_t>(ctx)] = nullptr;
    --buffered_;

    GPUMP_ASSERT(!freeKsrs_.empty(), "active queue and KSRT out of sync");
    sim::KsrIndex ksr = freeKsrs_.back();
    freeKsrs_.pop_back();

    // The on-chip PTBQ sizing (Section 3.3) is only valid when
    // preempted blocks are re-issued first AND re-issue is immediate;
    // the fresh-first ablation and the contended-switch model (where
    // entries wait on restore fetches, so saves can pile up behind
    // slow transfers) both need an unbounded (off-chip) queue.
    int ptbq_capacity = (preemptedFirst_ && !contendedSwitch_)
        ? ptbqCapacityPerKernel(params_)
        : std::numeric_limits<int>::max();
    kernelQueueTimeUs_.sample(
        sim::toMicroseconds(sim_->now() - cmd->enqueuedAt));
    std::unique_ptr<gpu::KernelExec> &slot =
        ksrt_[static_cast<std::size_t>(ksr)];
    if (!ksrPool_.empty()) {
        slot = std::move(ksrPool_.back());
        ksrPool_.pop_back();
        slot->assign(ksr, std::move(cmd), params_, ptbq_capacity);
    } else {
        slot = std::make_unique<gpu::KernelExec>(ksr, std::move(cmd),
                                                 params_, ptbq_capacity);
    }
    gpu::KernelExec *k = slot.get();
    activeQueue_.push_back(k);
    if (observer_)
        observer_->kernelAdmitted(*k);

    // The buffer slot is free again; let the dispatcher refill it.
    dispatcher_->onKernelBufferFreed();
    return k;
}

gpu::Sm *
SchedulingFramework::findIdleSm()
{
    for (auto &sm : sms_) {
        if (sm->state == gpu::Sm::State::Idle && !sm->reserved)
            return sm.get();
    }
    return nullptr;
}

sim::ContextId
SchedulingFramework::engineContext() const
{
    for (const auto &sm : sms_) {
        if (sm->kernel != nullptr)
            return sm->kernel->ctx();
    }
    return sim::invalidContext;
}

int
SchedulingFramework::unallocatedTbs(const gpu::KernelExec *k) const
{
    GPUMP_ASSERT(k != nullptr, "unallocatedTbs(null)");
    int issuable = (k->totalTbs() - k->issuedFresh()) +
        static_cast<int>(k->ptbqDepth());
    int granted = 0;
    for (const auto &sm : sms_) {
        if (sm->kernel != k || sm->reserved)
            continue;
        if (sm->state == gpu::Sm::State::Setup)
            granted += k->occupancy();
        else if (sm->state == gpu::Sm::State::Running)
            granted += sm->freeSlots();
    }
    return std::max(0, issuable - granted);
}

void
SchedulingFramework::assignSm(gpu::Sm *sm, gpu::KernelExec *k)
{
    GPUMP_ASSERT(sm != nullptr && k != nullptr, "assignSm(null)");
    GPUMP_ASSERT(sm->state == gpu::Sm::State::Idle && !sm->reserved,
                 "assignSm to non-idle SM %d (%s)", sm->id(),
                 smStateName(sm->state));
    GPUMP_ASSERT(k->hasIssuableTbs(),
                 "assignSm for kernel %s with nothing to issue",
                 k->profile().fullName().c_str());

    sm->kernel = k;
    sm->state = gpu::Sm::State::Setup;
    ++k->smsHeld;
    // The SM will fill up to the kernel's occupancy; grab the timeline
    // capacity once instead of growing it TB by TB.
    sm->resident.reserve(static_cast<std::size_t>(k->occupancy()));

    if (residency_ != nullptr) {
        // Setup proper waits for the context's state to be in device
        // memory.  For a resident context ensureResident runs the
        // callback synchronously, so the no-swap path is step-for-step
        // the unconditional one.  The epoch guards against the swap-in
        // landing after this Setup assignment was unwound (reserveSm
        // cancel, finalizeKernel) and the SM reused.
        std::uint64_t epoch = sm->setupEpoch;
        residency_->ensureResident(k->ctx(), [this, sm, k, epoch] {
            if (sm->setupEpoch != epoch || sm->kernel != k ||
                sm->state != gpu::Sm::State::Setup) {
                return;
            }
            beginSetup(sm);
        });
    } else {
        beginSetup(sm);
    }
    if (observer_)
        observer_->smAssigned(*sm, *k);
}

void
SchedulingFramework::beginSetup(gpu::Sm *sm)
{
    gpu::KernelExec *k = sm->kernel;
    sim::SimTime latency = params_.smSetupLatency;
    if (sm->loadedContext != k->ctx()) {
        latency += params_.contextLoadLatency;
        sm->tlb().flush();
        sm->loadedContext = k->ctx();
    }
    sm->pendingEvent = sim_->events().scheduleIn(
        latency, [this, sm] { finishSetup(sm); }, sim::prioDriver);
}

void
SchedulingFramework::finishSetup(gpu::Sm *sm)
{
    GPUMP_ASSERT(sm->state == gpu::Sm::State::Setup,
                 "setup completion on SM %d in state %s", sm->id(),
                 smStateName(sm->state));
    sm->state = gpu::Sm::State::Running;
    issueThreadBlocks(sm);
}

void
SchedulingFramework::placeResident(gpu::Sm *sm, gpu::KernelExec *k,
                                   int tb_index, sim::SimTime duration)
{
    gpu::ResidentTb tb;
    tb.tbIndex = tb_index;
    tb.startedAt = sim_->now();
    tb.endAt = sim_->now() + duration;
    // Reserve the FIFO sequence the old one-event-per-TB design
    // would have consumed here; the timeline event is armed with
    // it, so same-instant completions still interleave across SMs
    // in issue order.
    tb.seq = sim_->events().reserveSeq();
    sm->insertResident(tb);
    k->tbStarted();
    if (!k->startedIssuing) {
        k->startedIssuing = true;
        k->firstIssuedAt = sim_->now();
        if (observer_)
            observer_->kernelStarted(*k);
    }
}

void
SchedulingFramework::issueThreadBlocks(gpu::Sm *sm)
{
    GPUMP_ASSERT(sm->kernel != nullptr, "issue on SM with no kernel");
    if (sm->reserved || sm->state != gpu::Sm::State::Running)
        return;

    gpu::KernelExec *k = sm->kernel;

    // Within one fill the taken blocks form (at most) two contiguous
    // segments — preempted then fresh under preempted-first issue,
    // the reverse under the fresh-first ablation — because taking a
    // block never makes the preferred source non-empty again.  Sizing
    // the segments up front lets every fresh-TB duration be drawn in
    // one batched RNG call (identical draws, in the original loop's
    // order) instead of re-deriving the lognormal's parameters per
    // block.
    int slots = sm->freeSlots();
    int pre_avail = static_cast<int>(k->ptbqDepth());
    // Under the contended-switch model a preempted block may only
    // re-issue once its restore fetch has landed (the entry holds
    // restore credit); the share model re-issues immediately and folds
    // the restore cost into the block's runtime.
    int pre_ready = contendedSwitch_
        ? std::min(pre_avail, k->restoreCredit())
        : pre_avail;
    int fresh_avail = k->totalTbs() - k->issuedFresh();
    int n_pre, n_fresh;
    if (preemptedFirst_) {
        n_pre = std::min(slots, pre_ready);
        n_fresh = std::min(slots - n_pre, fresh_avail);
    } else {
        n_fresh = std::min(slots, fresh_avail);
        n_pre = std::min(slots - n_fresh, pre_ready);
    }

    auto issue_preempted = [&] {
        // Preempted blocks are re-issued first (Section 3.3); their
        // context is restored before execution resumes.  The restore
        // cost depends only on the kernel, so it is hoisted out of
        // the loop.  A block whose state was prefetched (restore
        // credit) skips the inline restore: its fetch already ran on
        // the transfer path.
        if (n_pre <= 0)
            return;
        sim::SimTime restore =
            gmem_->moveTime(k->contextBytesPerTb(), params_.numSms);
        for (int i = 0; i < n_pre; ++i) {
            gpu::PreemptedTb pt = k->takePreemptedTb();
            bool prefetched = k->consumeRestoreCredit();
            placeResident(sm, k, pt.tbIndex,
                          (prefetched ? 0 : restore) + pt.remaining);
            ++tbsRestored_;
        }
    };
    auto issue_fresh = [&] {
        if (n_fresh <= 0)
            return;
        sim::SimTime base = k->profile().tbDuration();
        if (params_.tbTimeCv <= 0.0) {
            for (int i = 0; i < n_fresh; ++i)
                placeResident(sm, k, k->takeFreshTb(), base);
            return;
        }
        auto n = static_cast<std::size_t>(n_fresh);
        tbDurationsUs_.resize(n);
        sim_->rng().fillLognormal(tbDurationsUs_.data(), n,
                                  sim::toMicroseconds(base),
                                  params_.tbTimeCv);
        for (std::size_t i = 0; i < n; ++i) {
            auto duration = std::max<sim::SimTime>(
                1, sim::microseconds(tbDurationsUs_[i]));
            placeResident(sm, k, k->takeFreshTb(), duration);
        }
    };

    if (preemptedFirst_) {
        issue_preempted();
        issue_fresh();
    } else {
        issue_fresh();
        issue_preempted();
    }
    if (contendedSwitch_) {
        // Slots the fill left empty are waiting on restore fetches;
        // stage them now so the data is moving while the SM runs (or
        // waits).  stageRestore caps the request at the PTBQ entries
        // not already covered.
        int unfilled = slots - n_pre - n_fresh;
        if (unfilled > 0)
            stageRestore(k, unfilled);
    }
    armCompletion(sm);

    if (sm->resident.empty()) {
        if (parkedForRestore(sm)) {
            // Every runnable block is waiting on an in-flight restore
            // fetch; keep the SM parked on the kernel — restoreArrived
            // re-drives it.  Releasing it would bounce the assignment.
            return;
        }
        // Assigned but the kernel's work evaporated (issued elsewhere
        // between reservation decisions); hand the SM back.
        smBecameIdle(sm);
    }
}

void
SchedulingFramework::armCompletion(gpu::Sm *sm)
{
    if (sm->resident.empty()) {
        sm->completionEvent.cancel();
        return;
    }
    const gpu::ResidentTb &head = sm->resident.front();
    if (sm->completionEvent.pending() && sm->armedSeq == head.seq)
        return; // already armed for the right block
    sm->completionEvent.cancel();
    sm->armedSeq = head.seq;
    sm->completionEvent = sim_->events().scheduleWithSeq(
        head.endAt, head.seq, [this, sm] { onTbCompleted(sm); },
        sim::prioCompletion);
}

void
SchedulingFramework::onTbCompleted(gpu::Sm *sm)
{
    gpu::KernelExec *k = sm->kernel;
    GPUMP_ASSERT(k != nullptr, "TB completion on kernel-less SM %d",
                 sm->id());
    GPUMP_ASSERT(!sm->resident.empty(),
                 "completion fired on SM %d with empty timeline",
                 sm->id());

    // The armed event always tracks the timeline head: completion is
    // a pop, not a search.
    const sim::SimTime tb_started = sm->resident.front().startedAt;
    sm->resident.erase(sm->resident.begin());
    k->tbEnded(true);
    ++tbsCompleted_;
    // Measurement hook: observers see the post-pop SM (resident empty
    // when this was a drain's last block) before any re-issue.
    for (predict::CompletionObserver *o : completionObservers_)
        o->observeTb(*sm, *k, tb_started, sim_->now());

    bool kernel_done = k->finished();

    if (sm->reserved) {
        // Draining mechanism: preemption completes when the SM empties.
        GPUMP_ASSERT(sm->state == gpu::Sm::State::Draining,
                     "reserved SM %d got a TB completion in state %s",
                     sm->id(), smStateName(sm->state));
        if (sm->resident.empty())
            completePreemption(sm);
    } else {
        if (!kernel_done && k->hasIssuableTbs())
            issueThreadBlocks(sm);
        // Guard on the same kernel: smBecameIdle hands the SM to the
        // policy, which may already have re-assigned it.  A parked SM
        // (restores in flight) stays held; restoreArrived re-drives it.
        if (sm->kernel == k && sm->resident.empty() &&
            !parkedForRestore(sm)) {
            smBecameIdle(sm);
        }
    }

    // Re-arm for whatever is now at the head of the timeline (no-op
    // when issueThreadBlocks already armed it, or when the SM emptied
    // and was handed back).
    armCompletion(sm);

    if (kernel_done)
        finalizeKernel(k);
}

void
SchedulingFramework::smBecameIdle(gpu::Sm *sm)
{
    gpu::KernelExec *k = sm->kernel;
    GPUMP_ASSERT(k != nullptr, "smBecameIdle on kernel-less SM");
    GPUMP_ASSERT(sm->resident.empty(), "idle SM with resident TBs");
    --k->smsHeld;
    sm->clearKernel();
    policy_->onSmIdle(sm);
    if (residency_ != nullptr)
        residency_->onPinsReleased();
}

void
SchedulingFramework::reserveSm(gpu::Sm *sm, gpu::KernelExec *next)
{
    GPUMP_ASSERT(sm != nullptr && next != nullptr, "reserveSm(null)");
    GPUMP_ASSERT(sm->busy(), "reserving an idle SM");
    GPUMP_ASSERT(sm->kernel != next,
                 "reserving SM %d for the kernel already running on it",
                 sm->id());
    GPUMP_ASSERT(mechanism_ != nullptr, "no preemption mechanism");

    if (sm->reserved) {
        retargetReservation(sm, next);
        return;
    }

    sm->reserved = true;
    sm->nextKernel = next;
    ++next->smsReserved;
    reserveTime_[static_cast<std::size_t>(sm->id())] = sim_->now();
    ++preemptions_;
    if (observer_)
        observer_->preemptionRequested(*sm, *sm->kernel, *next);

    if (sm->state == gpu::Sm::State::Setup) {
        // The kernel never started here; cancel the setup and hand
        // the SM over immediately.
        sm->pendingEvent.cancel();
        completePreemption(sm);
        return;
    }
    GPUMP_ASSERT(sm->state == gpu::Sm::State::Running,
                 "reserve of SM %d in state %s", sm->id(),
                 smStateName(sm->state));
    if (sm->resident.empty()) {
        // Parked for restore fetches (contended-switch model): nothing
        // is executing, so there is nothing to drain or save — hand
        // the SM over now.  The in-flight fetches land as credit on
        // the kernel and re-issue wherever it runs next.
        completePreemption(sm);
        return;
    }
    mechanism_->beginPreemption(sm);
}

void
SchedulingFramework::retargetReservation(gpu::Sm *sm,
                                         gpu::KernelExec *next)
{
    GPUMP_ASSERT(sm->reserved, "retarget of unreserved SM %d", sm->id());
    GPUMP_ASSERT(next != nullptr, "retarget to null kernel");
    if (sm->nextKernel == next)
        return;
    if (sm->nextKernel != nullptr)
        --sm->nextKernel->smsReserved;
    sm->nextKernel = next;
    ++next->smsReserved;
}

void
SchedulingFramework::recordContextSave(std::int64_t bytes, int tbs)
{
    ctxBytesSaved_ += static_cast<double>(bytes);
    tbsSaved_ += static_cast<double>(tbs);
}

void
SchedulingFramework::recordPtbqDepth(std::size_t depth)
{
    ptbqDepth_.sample(static_cast<double>(depth));
}

void
SchedulingFramework::completePreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(sm->reserved, "completePreemption on unreserved SM %d",
                 sm->id());
    GPUMP_ASSERT(sm->resident.empty(),
                 "preemption completed with TBs resident");

    gpu::KernelExec *old = sm->kernel;
    gpu::KernelExec *next = sm->nextKernel;
    GPUMP_ASSERT(old != nullptr, "preempted SM with no kernel");
    --old->smsHeld;
    if (next != nullptr)
        --next->smsReserved;

    preemptLatencyUs_.sample(sim::toMicroseconds(
        sim_->now() - reserveTime_[static_cast<std::size_t>(sm->id())]));
    if (observer_)
        observer_->preemptionCompleted(*sm);

    sm->clearKernel();
    policy_->onPreemptionComplete(sm, next);
    if (residency_ != nullptr)
        residency_->onPinsReleased();
}

void
SchedulingFramework::finalizeKernel(gpu::KernelExec *k)
{
    GPUMP_ASSERT(k->finished(), "finalize of unfinished kernel");

    // Take the kernel out of the tables first so policy callbacks
    // fired during the unwind below observe consistent state.  The
    // object stays alive (owned) until the end of this function.
    activeQueue_.erase(
        std::remove(activeQueue_.begin(), activeQueue_.end(), k),
        activeQueue_.end());
    sim::KsrIndex ksr = k->ksr();
    auto owned = std::move(ksrt_[static_cast<std::size_t>(ksr)]);
    freeKsrs_.push_back(ksr);

    // Unwind any SM still pointing at this kernel.  Only Setup SMs
    // can remain (their work evaporated before they were configured);
    // SMs with resident TBs cannot exist once every TB completed.
    // Orphan reservations targeting the dead kernel are cleared; the
    // policy learns about them when those preemptions complete.
    for (auto &sm : sms_) {
        if (sm->nextKernel == k) {
            sm->nextKernel = nullptr;
            --k->smsReserved;
        }
        if (sm->kernel == k) {
            GPUMP_ASSERT(sm->state == gpu::Sm::State::Setup,
                         "finished kernel still owns SM %d in state %s",
                         sm->id(), smStateName(sm->state));
            GPUMP_ASSERT(!sm->reserved,
                         "finished kernel owns a reserved Setup SM");
            sm->pendingEvent.cancel();
            --k->smsHeld;
            sm->clearKernel();
            policy_->onSmIdle(sm.get());
        }
    }
    GPUMP_ASSERT(k->smsHeld == 0,
                 "finished kernel %s still holds %d SMs",
                 k->profile().fullName().c_str(), k->smsHeld);
    GPUMP_ASSERT(k->smsReserved == 0,
                 "finished kernel %s still has %d reservations",
                 k->profile().fullName().c_str(), k->smsReserved);

    ++kernelsCompleted_;
    if (observer_)
        observer_->kernelFinished(*owned);
    // Measurement hook before the policy callback, so an observing
    // policy decides with this kernel's burst already folded in.
    for (predict::CompletionObserver *o : completionObservers_)
        o->observeKernel(*owned, owned->firstIssuedAt, sim_->now());
    policy_->onKernelFinished(owned.get());
    if (residency_ != nullptr)
        residency_->onPinsReleased();

    gpu::CommandPtr cmd = owned->command();
    owned->releaseCommand();
    ksrPool_.push_back(std::move(owned)); // recycled by the next admit

    if (cmd->queue != nullptr)
        dispatcher_->onCommandCompleted(cmd->queue);
    cmd->complete();
}

void
SchedulingFramework::submitContextTransfer(sim::ContextId ctx, int priority,
                                           std::int64_t bytes,
                                           gpu::Command::Kind kind,
                                           std::function<void()> done)
{
    GPUMP_ASSERT(xfer_ != nullptr,
                 "context transfer with no transfer engine wired");
    GPUMP_ASSERT(kind != gpu::Command::Kind::KernelLaunch,
                 "context transfer must be a memcpy");
    gpu::CommandPtr cmd =
        gpu::Command::makeMemcpy(ctx, priority, kind, bytes);
    cmd->onComplete = std::move(done);
    dispatcher_->stampInternal(cmd);
    ++ctxTransfers_;
    xfer_->submit(cmd);
}

int
SchedulingFramework::stageRestore(gpu::KernelExec *k, int max_tbs)
{
    GPUMP_ASSERT(k != nullptr, "stageRestore(null)");
    if (max_tbs <= 0)
        return 0;
    int uncovered = static_cast<int>(k->ptbqDepth()) -
        k->restoreCredit() - k->restoreInFlight();
    // Negative uncovered would mean more covered entries than the
    // queue holds: credit/in-flight leaked past the take clamp.  It
    // is tolerated here only as "nothing to stage", so audit it
    // instead of letting min() hide the corruption.
    GPUMP_AUDIT(uncovered >= -k->restoreInFlight(),
                "restore coverage beyond PTBQ + in-flight for %s "
                "(depth=%zu credit=%d inflight=%d)",
                k->profile().fullName().c_str(), k->ptbqDepth(),
                k->restoreCredit(), k->restoreInFlight());
    int n = std::min(max_tbs, uncovered);
    if (n <= 0)
        return 0;
    k->restoreRequested(n);
    std::uint64_t gen = k->generation();
    std::int64_t bytes = k->contextBytesPerTb() * n;
    if (contendedSwitch_) {
        submitContextTransfer(
            k->ctx(), k->priority(), bytes, gpu::Command::Kind::MemcpyH2D,
            [this, k, gen, n] { restoreArrived(k, gen, n); });
    } else {
        // Share-model staging (proactive prefetch without the
        // contended-switch model): the fetch takes the bandwidth-share
        // move time but queues behind nothing.
        sim_->events().scheduleIn(
            gmem_->moveTime(bytes, params_.numSms),
            [this, k, gen, n] { restoreArrived(k, gen, n); },
            sim::prioDriver);
    }
    return n;
}

void
SchedulingFramework::restoreArrived(gpu::KernelExec *k, std::uint64_t gen,
                                    int n)
{
    if (k->generation() != gen) {
        // The kernel finished and its KSR slot was recycled while the
        // fetch was in flight (share-model prefetch only; contended
        // parking keeps the kernel on an SM).  Nothing to credit.
        return;
    }
    k->restoreArrived(n);
    tbsPrefetched_ += static_cast<double>(n);
    for (auto &sm : sms_) {
        if (sm->kernel == k)
            issueThreadBlocks(sm.get());
    }
}

bool
SchedulingFramework::parkedForRestore(const gpu::Sm *sm) const
{
    return contendedSwitch_ && !sm->reserved && sm->kernel != nullptr &&
        sm->kernel->restoreInFlight() > 0;
}

void
SchedulingFramework::onContextRemapped(sim::ContextId ctx)
{
    for (auto &sm : sms_) {
        if (sm->loadedContext == ctx) {
            sm->tlb().flush();
            sm->loadedContext = sim::invalidContext;
        }
    }
}

bool
SchedulingFramework::contextPinned(sim::ContextId ctx) const
{
    for (const auto &sm : sms_) {
        if (sm->kernel != nullptr && sm->kernel->ctx() == ctx)
            return true;
        if (sm->nextKernel != nullptr && sm->nextKernel->ctx() == ctx)
            return true;
    }
    return false;
}

} // namespace core
} // namespace gpump
