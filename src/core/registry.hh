/**
 * @file
 * The pluggable scheme registry.
 *
 * The paper's central design claim is the separation of preemption
 * *mechanisms* from scheduling *policies* (Section 3).  This header
 * makes that separation an open API: every policy and mechanism
 * registers a descriptor — name, one-line doc, factory, and the
 * config tunables it understands — in a process-wide registry, and
 * the factories (`makePolicy` / `makeMechanism`) become thin lookups.
 * New schemes plug in from any translation unit, including ones
 * outside src/ entirely (see examples/custom_policy.cpp); nothing in
 * core needs editing.
 *
 * Declared tunables are enforced: each registrant claims a config
 * namespace (the DSS policy claims every "dss.*" key), and scheme
 * construction validates the merged sim::Config against the declared
 * keys.  A typo like "dss.tokens_per_kerel" is a hard fatal() naming
 * the nearest declared tunable instead of a silently ignored no-op.
 *
 * Static-library caveat: a registrar object in an archive member that
 * no symbol references is dropped by the linker.  Built-in schemes
 * therefore export a link-anchor function that the factory
 * translation unit references (see GPUMP_DEFINE_LINK_ANCHOR and the
 * force-link lists in policy.cc / preemption.cc).  Out-of-tree
 * registrants compiled into the executable itself need no anchor.
 */

#ifndef GPUMP_CORE_REGISTRY_HH
#define GPUMP_CORE_REGISTRY_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

/** Value type of a declared tunable. */
enum class TunableType
{
    Int,
    Double,
    Bool,
    String,
};

/** Printable type name ("int", "double", "bool", "string"). */
const char *tunableTypeName(TunableType t);

/**
 * One declared config knob of a registered scheme.
 *
 * Every tunable's key must live under the owning descriptor's
 * configPrefix ("dss.tokens_per_kernel" under prefix "dss"): the
 * prefix is what construction-time validation uses to decide which
 * keys the registrant must recognise.
 */
struct Tunable
{
    /** Full config key, e.g. "dss.tokens_per_kernel". */
    std::string key;
    TunableType type;
    /** Default rendered as config text; empty when the default is
     *  contextual (computed at system assembly, e.g. DSS's
     *  floor(NSMs/Nprocs) token budget). */
    std::string def;
    /** One-line description for --list-schemes. */
    std::string doc;
};

/** Levenshtein edit distance (suggestion engine for typo'd keys). */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p needle, or empty when none is a
 * plausible typo (closer than half the needle's length) — an
 * arbitrary far-off suggestion would mislead more than it helps.
 */
std::string nearestOf(const std::string &needle,
                      const std::vector<std::string> &candidates);

/**
 * A registry of named scheme constructors for one product kind
 * (scheduling policies or preemption mechanisms).
 *
 * Registration normally happens from static registrar objects at
 * program start; lookups run concurrently from the batch runner's
 * worker threads, so every accessor takes the registry mutex.
 * Descriptors are never removed, so pointers returned by find()/at()
 * stay valid for the life of the process.
 */
template <typename Base>
class SchemeRegistry
{
  public:
    /** Factory signature: tunables arrive through the merged config. */
    using Factory =
        std::function<std::unique_ptr<Base>(const sim::Config &)>;

    /** Everything the registry knows about one scheme. */
    struct Descriptor
    {
        /** Canonical name ("dss", "context_switch"). */
        std::string name;
        /** One-line description for errors and --list-schemes. */
        std::string doc;
        Factory factory;
        /** Config namespace this scheme claims; empty claims nothing.
         *  Every key "<configPrefix>.*" in a construction config must
         *  be one of the declared tunables. */
        std::string configPrefix;
        /** Declared tunables, all under configPrefix. */
        std::vector<Tunable> tunables;
        /** Accepted shorthands ("cs" for "context_switch"). */
        std::vector<std::string> aliases;
        /**
         * Policies only: true when the scheme triggers preemptions,
         * i.e. the mechanism choice affects its behaviour.  Drives
         * harness::Scheme::label() (non-preemptive policies collapse
         * the mechanism column) and Suite::allSchemes().
         */
        bool usesMechanism = true;
        /**
         * Optional assembly hook: fill contextual defaults into the
         * construction config once the machine size is known.  Called
         * by workload::System with the SM count and process count
         * before the factory runs (this is how DSS computes its
         * equal-share token budget without core knowing about DSS).
         */
        std::function<void(sim::Config &cfg, int numSms,
                           int numProcesses)>
            assemblyDefaults;
    };

    /** @param kind human-readable product name for error messages,
     *         e.g. "scheduling policy". */
    explicit SchemeRegistry(std::string kind) : kind_(std::move(kind)) {}

    SchemeRegistry(const SchemeRegistry &) = delete;
    SchemeRegistry &operator=(const SchemeRegistry &) = delete;

    /**
     * Register a scheme.  Fails fast (fatal) on an empty name or
     * factory, a duplicate name/alias, or a tunable declared outside
     * the claimed configPrefix.
     */
    void add(Descriptor d)
    {
        if (d.name.empty())
            sim::fatal("cannot register a %s with an empty name",
                       kind_.c_str());
        if (!d.factory)
            sim::fatal("%s '%s' registered without a factory",
                       kind_.c_str(), d.name.c_str());
        // validate() matches a key's first dot-segment against the
        // claimed prefixes, so a dotted prefix could never match and
        // two claimants would shadow each other's declarations.
        if (d.configPrefix.find('.') != std::string::npos) {
            sim::fatal("%s '%s' claims config prefix '%s', which must "
                       "not contain '.'",
                       kind_.c_str(), d.name.c_str(),
                       d.configPrefix.c_str());
        }
        for (const Tunable &t : d.tunables) {
            if (d.configPrefix.empty() ||
                t.key.rfind(d.configPrefix + ".", 0) != 0) {
                sim::fatal("%s '%s' declares tunable '%s' outside its "
                           "config namespace '%s.*'",
                           kind_.c_str(), d.name.c_str(), t.key.c_str(),
                           d.configPrefix.c_str());
            }
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (byName_.count(d.name) || aliases_.count(d.name)) {
            sim::fatal("duplicate %s registration '%s'", kind_.c_str(),
                       d.name.c_str());
        }
        if (!d.configPrefix.empty()) {
            for (const auto &kv : byName_) {
                if (kv.second.configPrefix == d.configPrefix) {
                    sim::fatal("%s '%s' claims config prefix '%s.*', "
                               "already claimed by '%s'",
                               kind_.c_str(), d.name.c_str(),
                               d.configPrefix.c_str(),
                               kv.first.c_str());
                }
            }
        }
        for (std::size_t i = 0; i < d.aliases.size(); ++i) {
            const std::string &a = d.aliases[i];
            bool self_dup = a == d.name ||
                std::find(d.aliases.begin(),
                          d.aliases.begin() +
                              static_cast<std::ptrdiff_t>(i),
                          a) != d.aliases.begin() +
                    static_cast<std::ptrdiff_t>(i);
            if (self_dup || byName_.count(a) || aliases_.count(a)) {
                sim::fatal("duplicate %s alias '%s' (registering '%s')",
                           kind_.c_str(), a.c_str(), d.name.c_str());
            }
        }
        auto [it, inserted] = byName_.emplace(d.name, std::move(d));
        GPUMP_ASSERT(inserted, "registry emplace failed");
        for (const std::string &a : it->second.aliases)
            aliases_.emplace(a, &it->second);
    }

    /** Alias-aware lookup; nullptr when unknown. */
    const Descriptor *find(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = byName_.find(name);
        if (it != byName_.end())
            return &it->second;
        auto at = aliases_.find(name);
        return at == aliases_.end() ? nullptr : at->second;
    }

    /**
     * Lookup that raises fatal() for unknown names, listing every
     * registered entry so the caller can see what exists.
     */
    const Descriptor &at(const std::string &name) const
    {
        const Descriptor *d = find(name);
        if (d == nullptr) {
            sim::fatal("unknown %s '%s'; registered: %s", kind_.c_str(),
                       name.c_str(), joinNames().c_str());
        }
        return *d;
    }

    /** Canonical names in sorted order (stable across calls). */
    std::vector<std::string> list() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> out;
        out.reserve(byName_.size());
        for (const auto &kv : byName_)
            out.push_back(kv.first);
        return out; // std::map iteration is already sorted
    }

    /** Number of registered schemes (aliases not counted). */
    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return byName_.size();
    }

    /**
     * Construct scheme @p name, validating @p cfg first: every key
     * under a namespace claimed by *any* registrant of this registry
     * must be a declared tunable of that registrant, and declared
     * tunables present in @p cfg must convert to their declared type.
     *
     * The scheme's declared non-contextual defaults are merged into
     * the config handed to the factory, so the default a Tunable
     * advertises (--list-schemes) is authoritative — a getter
     * fallback inside the factory can never silently drift from it.
     */
    std::unique_ptr<Base> make(const std::string &name,
                               const sim::Config &cfg) const
    {
        const Descriptor &d = at(name);
        validate(cfg);
        sim::Config effective = cfg;
        for (const Tunable &t : d.tunables) {
            if (!t.def.empty() && !effective.has(t.key))
                effective.set(t.key, t.def);
        }
        return d.factory(effective);
    }

    /**
     * Validate @p cfg against every claimed namespace: a key whose
     * "prefix." matches some registrant's configPrefix but is not one
     * of its declared tunables raises fatal() naming the nearest
     * declared tunable.  Keys under unclaimed namespaces (gpu.*,
     * gmem.*, ...) are left alone — they belong to other subsystems.
     */
    void validate(const sim::Config &cfg) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string &key : cfg.keys()) {
            auto dot = key.find('.');
            if (dot == std::string::npos)
                continue;
            const std::string prefix = key.substr(0, dot);
            const Descriptor *owner = nullptr;
            for (const auto &kv : byName_) {
                if (kv.second.configPrefix == prefix) {
                    owner = &kv.second;
                    break;
                }
            }
            if (owner == nullptr)
                continue;
            const Tunable *match = nullptr;
            std::vector<std::string> declared;
            for (const Tunable &t : owner->tunables) {
                declared.push_back(t.key);
                if (t.key == key)
                    match = &t;
            }
            if (match == nullptr) {
                std::string near = nearestOf(key, declared);
                if (!near.empty()) {
                    sim::fatal("unknown config key '%s' for %s '%s'; "
                               "did you mean '%s'?",
                               key.c_str(), kind_.c_str(),
                               owner->name.c_str(), near.c_str());
                }
                // No plausible typo target: enumerate what exists.
                std::string known;
                for (const std::string &dk : declared)
                    known += (known.empty() ? "" : ", ") + dk;
                sim::fatal("unknown config key '%s': %s '%s' declares "
                           "%s under '%s.*'",
                           key.c_str(), kind_.c_str(),
                           owner->name.c_str(),
                           known.empty() ? "no tunables"
                                         : known.c_str(),
                           prefix.c_str());
            }
            // Force a typed conversion so malformed values fail here,
            // with the key named, instead of deep inside a factory.
            switch (match->type) {
              case TunableType::Int:
                cfg.getInt(key, 0);
                break;
              case TunableType::Double:
                cfg.getDouble(key, 0.0);
                break;
              case TunableType::Bool:
                cfg.getBool(key, false);
                break;
              case TunableType::String:
                break;
            }
        }
    }

    /** The product kind this registry holds ("scheduling policy"). */
    const std::string &kind() const { return kind_; }

  private:
    std::string joinNames() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::string out;
        for (const auto &kv : byName_) {
            if (!out.empty())
                out += ", ";
            out += kv.first;
        }
        return out.empty() ? "(none)" : out;
    }

    std::string kind_;
    mutable std::mutex mutex_;
    std::map<std::string, Descriptor> byName_;
    std::map<std::string, const Descriptor *> aliases_;
};

/**
 * Define the link anchor for a built-in registrant living in the
 * gpump static library.  Place next to the registrar object; add a
 * matching GPUMP_FORCE_LINK line to the factory TU (policy.cc or
 * preemption.cc) so the archive member is always pulled in.
 */
#define GPUMP_DEFINE_LINK_ANCHOR(token)                                     \
    void gpumpLinkAnchor_##token() {}

/** Declare + call a link anchor from the factory translation unit. */
#define GPUMP_FORCE_LINK(token)                                             \
    do {                                                                    \
        void gpumpLinkAnchor_##token();                                     \
        gpumpLinkAnchor_##token();                                          \
    } while (0)

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_REGISTRY_HH
