#include "core/draining.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

void
DrainingMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "draining an SM with nothing resident");
    // Nothing to do actively: the reserved flag already stops the SM
    // driver from issuing new thread blocks; the framework completes
    // the preemption when the last resident block finishes.
    sm->state = gpu::Sm::State::Draining;
}

} // namespace core
} // namespace gpump
