#include "core/draining.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

void
DrainingMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "draining an SM with nothing resident");
    // Nothing to do actively: the reserved flag already stops the SM
    // driver from issuing new thread blocks; the framework completes
    // the preemption when the last resident block finishes.
    sm->state = gpu::Sm::State::Draining;
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_drain = [] {
    MechanismRegistry::Descriptor d;
    d.name = "draining";
    d.aliases = {"drain"};
    d.doc = "Drain-to-thread-block-boundary preemption (Section 3.2): "
            "stop issuing and let resident blocks finish; no context "
            "is saved, latency is the blocks' remaining run time";
    d.factory = [](const sim::Config &) {
        return std::make_unique<DrainingMechanism>();
    };
    mechanismRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(DrainingMechanism)

} // namespace core
} // namespace gpump
